"""Failure-injection / robustness property tests.

Arbitrary (including hostile) configuration inputs must either
construct valid objects or raise the package's own typed errors —
never an uncontrolled TypeError/ZeroDivisionError/IndexError from deep
inside the engine.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheConfig
from repro.cache.setassoc import SetAssociativeCache
from repro.errors import ReproError
from repro.trace.events import AccessBatch
from repro.trace.stream import AddressStream


@given(
    capacity=st.integers(min_value=-(2**20), max_value=2**20),
    associativity=st.integers(min_value=-4, max_value=64),
    block=st.integers(min_value=-8, max_value=8192),
    sector=st.one_of(st.none(), st.integers(min_value=-8, max_value=8192)),
    policy=st.sampled_from(["lru", "fifo", "random", "mru", ""]),
)
@settings(max_examples=300, deadline=None)
def test_cache_config_validates_or_constructs(
    capacity, associativity, block, sector, policy
):
    try:
        config = CacheConfig(
            "F", capacity, associativity, block,
            sector_size=sector, policy=policy,
        )
    except ReproError:
        return  # rejected with the package's own error: fine
    # If construction succeeded, the config must be internally sound
    # and the cache must be operable.
    assert config.num_sets >= 1
    cache = SetAssociativeCache(config)
    cache.process(AccessBatch.from_lists([0, 64, 128], 8, [0, 1, 0]))
    assert cache.stats.accesses == 3


@given(
    addrs=st.lists(
        st.integers(min_value=0, max_value=2**62), max_size=50
    ),
    size=st.integers(min_value=1, max_value=1 << 16),
)
@settings(max_examples=100, deadline=None)
def test_engine_tolerates_extreme_addresses(addrs, size):
    """Huge addresses and sizes must not break address arithmetic."""
    cache = SetAssociativeCache(CacheConfig("X", 4096, 4, 64))
    batch = AccessBatch.from_lists(
        np.array(addrs, dtype=np.uint64), min(size, 64), 0
    )
    out = cache.process(batch)
    assert cache.stats.accesses == len(addrs)
    # Downstream fills reference the same lines that missed.
    if len(out):
        assert int(out.sizes.max()) <= 64


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_stream_operations_never_corrupt_counts(data):
    """Random append/head/concat sequences keep counts consistent."""
    stream = AddressStream(chunk_events=data.draw(st.integers(1, 32)))
    total = 0
    for _ in range(data.draw(st.integers(0, 6))):
        n = data.draw(st.integers(0, 40))
        stream.append(
            np.arange(n, dtype=np.uint64) * 8, 8, 0
        )
        total += n
    assert len(stream) == total
    head_n = data.draw(st.integers(0, 50))
    assert len(stream.head(head_n)) == min(head_n, total)
    doubled = stream.concat(stream)
    assert len(doubled) == 2 * total
    assert len(doubled.as_batch()) == 2 * total

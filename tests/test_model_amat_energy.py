"""Model tests: Equations (1)-(4) on hand-computed hierarchies."""

import pytest

from repro.cache.stats import HierarchyStats, LevelStats
from repro.errors import ModelError
from repro.model.amat import amat_ns, level_time_breakdown_ns
from repro.model.bindings import LevelBinding
from repro.model.edp import energy_delay_product
from repro.model.energy import (
    dynamic_energy_breakdown_pj,
    dynamic_energy_pj,
    static_energy_j,
    total_static_power_w,
)
from repro.model.runtime import full_run_references, scaled_runtime_s
from repro.tech.params import PCM


def two_level_stats():
    """100 refs: 90 hit L1, 10 go to MEM (6 loads, 4 stores)."""
    l1 = LevelStats(
        name="L1", loads=80, stores=20, load_bits=80 * 64, store_bits=20 * 64,
        load_hits=74, store_hits=16, load_misses=6, store_misses=4,
    )
    mem = LevelStats(
        name="MEM", loads=6, stores=4, load_bits=6 * 512, store_bits=4 * 512,
        load_hits=6, store_hits=4,
    )
    return HierarchyStats(levels=[l1, mem], references=100)


def bindings():
    return {
        "L1": LevelBinding("L1", 1.0, 1.0, 0.1, 0.1, 0.05),
        "MEM": LevelBinding("MEM", 10.0, 20.0, 5.0, 7.0, 1.0),
    }


class TestAmat:
    def test_hand_computed(self):
        # numerator = (1*80 + 1*20) + (10*6 + 20*4) = 100 + 140 = 240
        assert amat_ns(two_level_stats(), bindings()) == pytest.approx(2.40)

    def test_breakdown(self):
        breakdown = level_time_breakdown_ns(two_level_stats(), bindings())
        assert breakdown == {"L1": 100.0, "MEM": 140.0}

    def test_zero_references_rejected(self):
        stats = HierarchyStats(levels=[], references=0)
        with pytest.raises(ModelError):
            amat_ns(stats, {})

    def test_missing_binding_rejected(self):
        with pytest.raises(ModelError, match="MEM"):
            amat_ns(two_level_stats(), {"L1": bindings()["L1"]})


class TestEnergy:
    def test_dynamic_hand_computed(self):
        # L1: 0.1*(80*64) + 0.1*(20*64) = 640; MEM: 5*3072 + 7*2048 = 29696
        breakdown = dynamic_energy_breakdown_pj(two_level_stats(), bindings())
        assert breakdown["L1"] == pytest.approx(640.0)
        assert breakdown["MEM"] == pytest.approx(29696.0)
        assert dynamic_energy_pj(two_level_stats(), bindings()) == pytest.approx(
            30336.0
        )

    def test_static_power_sums_levels(self):
        assert total_static_power_w(bindings()) == pytest.approx(1.05)

    def test_static_energy(self):
        assert static_energy_j(10.0, bindings()) == pytest.approx(10.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ModelError):
            static_energy_j(-1.0, bindings())


class TestRuntime:
    def test_eq1_scaling(self):
        assert scaled_runtime_s(100.0, 3.0, 2.0) == pytest.approx(150.0)

    def test_identity_when_amat_equal(self):
        assert scaled_runtime_s(42.0, 2.0, 2.0) == 42.0

    def test_full_run_references(self):
        # 10 s at 2 ns/ref -> 5e9 references.
        assert full_run_references(10.0, 2.0) == pytest.approx(5e9)

    def test_invalid_inputs(self):
        with pytest.raises(ModelError):
            scaled_runtime_s(10.0, 1.0, 0.0)
        with pytest.raises(ModelError):
            full_run_references(10.0, 0.0)
        with pytest.raises(ModelError):
            scaled_runtime_s(-1.0, 1.0, 1.0)


class TestEDP:
    def test_product(self):
        assert energy_delay_product(3.0, 4.0) == 12.0

    def test_negative_rejected(self):
        with pytest.raises(ModelError):
            energy_delay_product(-1.0, 1.0)


class TestBindings:
    def test_from_technology(self):
        binding = LevelBinding.from_technology("NVM", PCM, 1024**3)
        assert binding.read_ns == 21.0
        assert binding.write_ns == 100.0
        assert binding.static_w == 0.0

    def test_negative_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            LevelBinding("X", -1, 1, 1, 1, 0)

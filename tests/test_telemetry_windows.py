"""Windowed time-series: exact conservation against final statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.hierarchy import Hierarchy
from repro.cache.mainmem import MainMemory
from repro.cache.setassoc import SetAssociativeCache
from repro.errors import TelemetryError
from repro.telemetry.core import Telemetry
from repro.telemetry.exporters import read_windows_csv
from repro.telemetry.windows import (
    WINDOW_FIELDS,
    WindowedCollector,
    sum_windows,
)
from repro.trace.stream import AddressStream
from repro.units import KiB

pytestmark = pytest.mark.telemetry

TINY_SCALE = 1.0 / 4096


def small_hierarchy() -> Hierarchy:
    """A 2-level hierarchy small enough to miss frequently."""
    return Hierarchy(
        [
            SetAssociativeCache(CacheConfig("L1", 1 * KiB, 2, 64)),
            SetAssociativeCache(CacheConfig("L2", 4 * KiB, 4, 64)),
        ],
        MainMemory("MEM"),
    )


def mixed_stream(n: int = 4096, seed: int = 3):
    """A reusing load/store mix over a footprint larger than L2."""
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, 64 * KiB, size=n, dtype=np.uint64) * 8
    return AddressStream.from_arrays(
        addresses, 8, rng.integers(0, 2, size=n)
    )


def run_in_batches(
    hierarchy: Hierarchy, stream: AddressStream, batch: int = 256
) -> None:
    """Feed a stream in small batches so several windows can emit.

    (``Hierarchy.run`` consumes 2**18-event chunks, so a small test
    stream would otherwise arrive as a single observer callback.)
    """
    from repro.trace.events import AccessBatch

    for chunk in stream.chunks():
        for start in range(0, len(chunk), batch):
            stop = start + batch
            hierarchy.process_batch(
                AccessBatch(
                    chunk.addresses[start:stop],
                    chunk.sizes[start:stop],
                    chunk.is_store[start:stop],
                )
            )


def attach_collector(
    hierarchy: Hierarchy, window_refs: int
) -> WindowedCollector:
    collector = WindowedCollector(
        "test", lambda: hierarchy.stats().levels, window_refs=window_refs
    )
    hierarchy.observer = collector
    return collector


class TestConservation:
    def test_window_sums_equal_final_stats_exactly(self):
        hierarchy = small_hierarchy()
        collector = attach_collector(hierarchy, window_refs=256)
        run_in_batches(hierarchy, mixed_stream())
        stats = hierarchy.stats()
        collector.finish()
        assert len(collector.records) > len(stats.levels)  # several windows
        totals = collector.totals()
        for level in stats.levels:
            for field in WINDOW_FIELDS:
                assert totals[level.name][field] == getattr(level, field), (
                    f"{level.name}.{field} not conserved"
                )

    def test_drain_writebacks_land_in_final_window(self):
        # Batch size == window size, so the last batch emits a window
        # right at the end of the stream; the drain then mutates stats
        # *without* advancing refs, and finish() must still capture it.
        hierarchy = small_hierarchy()
        collector = attach_collector(hierarchy, window_refs=256)
        run_in_batches(hierarchy, mixed_stream(), batch=256)
        windows_before_drain = collector.records[-1].index
        hierarchy.drain()
        stats = hierarchy.stats()
        assert stats.levels[0].writebacks > 0  # drain flushed dirty L1
        collector.finish()
        assert collector.records[-1].index == windows_before_drain + 1
        final = collector.records[-1]
        assert final.start_refs == final.end_refs  # zero-width: drain only
        totals = collector.totals()
        for level in stats.levels:
            for field in WINDOW_FIELDS:
                assert totals[level.name][field] == getattr(level, field)

    def test_csv_round_trip_preserves_conservation(self, tmp_path):
        telemetry = Telemetry(tmp_path, window_refs=256)
        hierarchy = small_hierarchy()
        collector = telemetry.window_collector(
            "round-trip", lambda: hierarchy.stats().levels
        )
        hierarchy.observer = collector
        run_in_batches(hierarchy, mixed_stream())
        hierarchy.drain()
        stats = hierarchy.stats()
        path = telemetry.finish_collector(collector)
        read_back = read_windows_csv(path)
        assert read_back == collector.records
        totals = sum_windows(read_back)
        for level in stats.levels:
            for field in WINDOW_FIELDS:
                assert totals[level.name][field] == getattr(level, field)


class TestWindowing:
    def test_windows_partition_the_reference_axis(self):
        hierarchy = small_hierarchy()
        collector = attach_collector(hierarchy, window_refs=300)
        run_in_batches(hierarchy, mixed_stream())
        collector.finish()
        l1_records = [r for r in collector.records if r.level == "L1"]
        assert l1_records[0].start_refs == 0
        for prev, nxt in zip(l1_records, l1_records[1:]):
            assert nxt.start_refs == prev.end_refs
            assert nxt.index == prev.index + 1
        assert l1_records[-1].end_refs == collector.refs

    def test_windows_are_at_least_window_refs_wide_except_last(self):
        hierarchy = small_hierarchy()
        collector = attach_collector(hierarchy, window_refs=300)
        run_in_batches(hierarchy, mixed_stream())
        collector.finish()
        l1_records = [r for r in collector.records if r.level == "L1"]
        for record in l1_records[:-1]:
            assert record.end_refs - record.start_refs >= 300

    def test_no_activity_emits_no_windows(self):
        hierarchy = small_hierarchy()
        collector = attach_collector(hierarchy, window_refs=16)
        assert collector.finish() == []

    def test_finish_is_idempotent(self):
        hierarchy = small_hierarchy()
        collector = attach_collector(hierarchy, window_refs=16)
        hierarchy.run(mixed_stream(256))
        first = list(collector.finish())
        assert collector.finish() == first

    def test_derived_properties(self):
        hierarchy = small_hierarchy()
        collector = attach_collector(hierarchy, window_refs=1 << 30)
        stats = hierarchy.run(mixed_stream())
        [l1] = [r for r in collector.finish() if r.level == "L1"]
        level = stats.levels[0]
        assert l1.accesses == level.loads + level.stores
        assert l1.hits == level.load_hits + level.store_hits
        assert l1.hit_rate == pytest.approx(l1.hits / l1.accesses)
        assert l1.bytes_moved == (level.load_bits + level.store_bits) // 8
        width = l1.end_refs - l1.start_refs
        assert l1.demand_bytes_per_ref == pytest.approx(
            l1.bytes_moved / width
        )


class TestValidation:
    def test_rejects_non_positive_window(self):
        with pytest.raises(TelemetryError, match="positive"):
            WindowedCollector("x", list, window_refs=0)

    def test_rejects_level_set_changes(self):
        from repro.cache.stats import LevelStats

        levels = [LevelStats(name="A")]
        collector = WindowedCollector(
            "x", lambda: list(levels), window_refs=1
        )
        levels.append(LevelStats(name="B"))
        with pytest.raises(TelemetryError, match="level set changed"):
            collector.on_refs(1)

    def test_rejects_duplicate_level_names(self):
        from repro.cache.stats import LevelStats

        with pytest.raises(TelemetryError, match="duplicate level"):
            WindowedCollector(
                "x",
                lambda: [LevelStats(name="A"), LevelStats(name="A")],
                window_refs=1,
            )


class TestRunnerIntegration:
    """The acceptance property: CSV sums equal final HierarchyStats."""

    def test_design_windows_match_design_stats(self, tmp_path):
        from repro.designs.configs import N_CONFIGS
        from repro.designs.nmm import NMMDesign
        from repro.experiments.runner import Runner
        from repro.tech.params import get_technology
        from repro.workloads.registry import get_workload

        telemetry = Telemetry(tmp_path, window_refs=1 << 14)
        runner = Runner(scale=TINY_SCALE, seed=7, telemetry=telemetry)
        workload = get_workload("Hashing")
        design = NMMDesign(
            get_technology("PCM"), N_CONFIGS["N6"],
            scale=TINY_SCALE, reference=runner.reference,
        )
        stats = runner.stats_for(design, workload)
        telemetry.close()

        csv_path = (
            tmp_path / f"windows_design-{design.sim_key()}-Hashing.csv"
        )
        totals = sum_windows(read_windows_csv(csv_path))
        # The design sim covers only the lower (post-L3) levels; the
        # upper levels carry the analytic local-reference injection and
        # are covered by the upper-stage collector instead.
        lower = stats.levels[3:]
        assert set(totals) == {level.name for level in lower}
        for level in lower:
            for field in WINDOW_FIELDS:
                assert totals[level.name][field] == getattr(level, field), (
                    f"{level.name}.{field} not conserved through the CSV"
                )

    def test_upper_windows_match_shared_sram_stats(self, tmp_path):
        from repro.experiments.runner import Runner
        from repro.workloads.registry import get_workload

        telemetry = Telemetry(tmp_path, window_refs=1 << 14)
        runner = Runner(
            scale=TINY_SCALE, seed=7, telemetry=telemetry, local_factor=0
        )
        trace = runner.prepare(get_workload("Hashing"))
        telemetry.close()

        totals = sum_windows(
            read_windows_csv(tmp_path / "windows_upper-Hashing.csv")
        )
        # With local_factor=0 nothing is injected, so the upper stats
        # are exactly what the windows observed (L1/L2/L3 + CAPTURE).
        for level in trace.upper_stats:
            for field in WINDOW_FIELDS:
                assert totals[level.name][field] == getattr(level, field)

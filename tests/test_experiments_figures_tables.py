"""Figure/table/render/CLI machinery tests (small scale, subset suite)."""

import pytest

from repro.experiments.figures import (
    FigureSeries,
    figure1,
    figure3,
    figure7,
)
from repro.experiments.heatmap import figure9, figure10
from repro.experiments.render import ascii_table, render_figure, render_heatmap
from repro.experiments.runner import Runner
from repro.experiments.tables import table1, table2, table3, table4
from repro.tech.params import EDRAM, PCM
from repro.workloads.registry import get_workload

SCALE = 1.0 / 8192


@pytest.fixture(scope="module")
def runner():
    return Runner(scale=SCALE, seed=5)


@pytest.fixture(scope="module")
def mini_suite():
    return [get_workload("CG"), get_workload("Hashing")]


class TestTables:
    def test_table1_rows(self):
        headers, rows = table1()
        assert len(rows) == 6
        names = [r[0] for r in rows]
        assert names == ["RAM", "PCM", "STTRAM", "FeRAM", "eDRAM", "HMC"]
        pcm = rows[1]
        assert pcm[1:5] == ["21", "100", "12.4", "210.3"]

    def test_table2_rows(self):
        headers, rows = table2()
        assert len(rows) == 8
        assert rows[0] == ["EH1", "16", "64"]

    def test_table3_rows(self):
        headers, rows = table3()
        assert len(rows) == 9
        assert rows[5] == ["N6", "512", "512B"]

    def test_table4_rows(self):
        headers, rows = table4()
        assert len(rows) == 8
        suites = {r[0] for r in rows}
        assert suites == {"NPB", "CORAL", "Application"}


class TestFigureMachinery:
    def test_figure1_structure(self, runner, mini_suite):
        fig = figure1(runner, workloads=mini_suite, nvm_techs=[PCM])
        assert fig.metric == "time_norm"
        assert list(fig.series) == ["PCM"]
        assert list(fig.series["PCM"]) == [f"N{i}" for i in range(1, 10)]
        for value in fig.series["PCM"].values():
            assert 0.3 < value < 5.0

    def test_figure_average_matches_per_workload(self, runner, mini_suite):
        fig = figure1(runner, workloads=mini_suite, nvm_techs=[PCM])
        for config, avg in fig.series["PCM"].items():
            detail = fig.per_workload["PCM"][config]
            assert avg == pytest.approx(sum(detail.values()) / len(detail))

    def test_figure3_structure(self, runner, mini_suite):
        fig = figure3(runner, workloads=mini_suite, cache_techs=[EDRAM])
        assert list(fig.series["eDRAM"]) == [f"EH{i}" for i in range(1, 9)]

    def test_figure7_per_workload_categories(self, runner, mini_suite):
        fig = figure7(runner, workloads=mini_suite, nvm_techs=[PCM])
        assert fig.categories == ["CG", "Hashing"]
        assert set(fig.series["PCM"]) == {"CG", "Hashing"}

    def test_best_helper(self):
        fig = FigureSeries(
            figure="F", title="t", metric="m", categories=["a", "b"],
            series={"s": {"a": 2.0, "b": 1.0}},
        )
        assert fig.best() == ("s", "b", 1.0)

    def test_best_empty_raises(self):
        fig = FigureSeries(figure="F", title="t", metric="m", categories=[])
        with pytest.raises(ValueError):
            fig.best()


class TestHeatmaps:
    def test_figure9_grid(self, runner, mini_suite):
        hm = figure9(runner, workloads=mini_suite, factors=(1, 5))
        assert hm.read_factors == [1, 5]
        assert len(hm.values) == 2 and len(hm.values[0]) == 2

    def test_read_latency_hurts_more_than_write(self, runner, mini_suite):
        """Paper: 'read operations dominate' — scaling read latency
        costs more runtime than scaling write latency (for read-mostly
        workloads like CG)."""
        hm = figure9(runner, workloads=[get_workload("CG")], factors=(1, 5))
        assert hm.at(read_x=5, write_x=1) > hm.at(read_x=1, write_x=5)

    def test_monotone_in_latency(self, runner, mini_suite):
        hm = figure9(runner, workloads=mini_suite, factors=(1, 5, 20))
        base = hm.at(1, 1)
        assert hm.at(5, 5) >= base
        assert hm.at(20, 20) >= hm.at(5, 5)

    def test_figure10_energy_monotone(self, runner, mini_suite):
        hm = figure10(runner, workloads=mini_suite, factors=(1, 9))
        assert hm.at(9, 9) > hm.at(1, 1)

    def test_at_unknown_point_raises(self, runner, mini_suite):
        hm = figure9(runner, workloads=mini_suite, factors=(1,))
        with pytest.raises(ValueError):
            hm.at(3, 3)


class TestRender:
    def test_ascii_table_alignment(self):
        text = ascii_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[:1])) == 1

    def test_render_figure_contains_values(self):
        fig = FigureSeries(
            figure="Figure X", title="demo", metric="time_norm",
            categories=["c1"], series={"s": {"c1": 1.234}},
        )
        text = render_figure(fig)
        assert "Figure X" in text and "1.234" in text

    def test_render_heatmap(self, runner, mini_suite):
        hm = figure9(runner, workloads=mini_suite, factors=(1, 5))
        text = render_heatmap(hm)
        assert "write\\read" in text
        assert "5x" in text


class TestCli:
    def test_tables_command(self, capsys):
        from repro.experiments.cli import main

        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "PCM" in out and "Table 4" in out

    def test_figure_command_small(self, capsys):
        from repro.experiments.cli import main

        code = main(
            ["--scale", str(SCALE), "--workloads", "CG", "figure", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "EH1" in out

    def test_unknown_figure_rejected(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["figure", "11"])


class TestCliErrorsAndHeatmapCommand:
    def test_unknown_workload_clean_error(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit, match="unknown workload"):
            main(["--workloads", "NOPE", "tables"])

    def test_heatmap_command(self, capsys):
        from repro.experiments.cli import main

        code = main([
            "--scale", str(SCALE), "--workloads", "CG",
            "heatmap", "time", "--factors", "1,5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out and "5x" in out

    def test_heatmap_bad_factors(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit, match="factors"):
            main(["heatmap", "time", "--factors", "1,banana"])

    def test_oracle_unknown_tech(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit, match="unknown technology"):
            main(["--scale", str(SCALE), "oracle", "CG", "--tech", "MRAM"])

    def test_validate_command(self, capsys):
        from repro.experiments.cli import main

        assert main(["validate"]) == 0
        assert "4/4" in capsys.readouterr().out

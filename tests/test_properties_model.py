"""Property-based tests of the model layer (Equations 1–4).

Invariants checked over arbitrary (valid) hierarchy statistics and
bindings:

- self-normalization: finalize(x, x) always yields exactly 1.0 ratios;
- AMAT linearity: doubling every count leaves AMAT unchanged, doubling
  only the memory-level counts increases it;
- energy additivity over levels;
- EDP consistency: edp == energy * time for every evaluation.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.stats import HierarchyStats, LevelStats
from repro.model.amat import amat_ns
from repro.model.bindings import LevelBinding
from repro.model.energy import dynamic_energy_breakdown_pj, dynamic_energy_pj
from repro.model.evaluate import WorkloadMeta, evaluate_stats, finalize

counts = st.integers(min_value=0, max_value=10**7)
positive_counts = st.integers(min_value=1, max_value=10**7)
latency = st.floats(min_value=0.1, max_value=500.0, allow_nan=False)
energy_density = st.floats(min_value=0.01, max_value=300.0, allow_nan=False)
power = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)


@st.composite
def hierarchy_case(draw):
    """A consistent (stats, bindings) pair for a 2-level hierarchy."""
    l1_loads = draw(positive_counts)
    l1_stores = draw(counts)
    mem_loads = draw(counts)
    mem_stores = draw(counts)
    stats = HierarchyStats(
        levels=[
            LevelStats(
                name="L1", loads=l1_loads, stores=l1_stores,
                load_bits=l1_loads * 64, store_bits=l1_stores * 64,
                load_hits=l1_loads, store_hits=l1_stores,
            ),
            LevelStats(
                name="MEM", loads=mem_loads, stores=mem_stores,
                load_bits=mem_loads * 512, store_bits=mem_stores * 512,
                load_hits=mem_loads, store_hits=mem_stores,
            ),
        ],
        references=l1_loads + l1_stores,
    )
    bindings = {
        "L1": LevelBinding("L1", draw(latency), draw(latency),
                           draw(energy_density), draw(energy_density),
                           draw(power)),
        "MEM": LevelBinding("MEM", draw(latency), draw(latency),
                            draw(energy_density), draw(energy_density),
                            draw(power)),
    }
    return stats, bindings


META = WorkloadMeta(name="W", footprint_bytes=1 << 30, t_ref_s=50.0)


@given(hierarchy_case())
@settings(max_examples=100, deadline=None)
def test_self_normalization_is_exactly_one(case):
    stats, bindings = case
    raw = evaluate_stats("X", stats, bindings)
    ev = finalize(raw, raw, META)
    assert ev.time_norm == 1.0
    assert ev.time_s == META.t_ref_s
    assert abs(ev.energy_norm - 1.0) < 1e-12
    assert abs(ev.edp_norm - 1.0) < 1e-12


@given(hierarchy_case(), st.integers(min_value=2, max_value=16))
@settings(max_examples=60, deadline=None)
def test_amat_scale_invariance(case, factor):
    """Multiplying every count (and references) by k preserves AMAT."""
    stats, bindings = case
    scaled_levels = [
        LevelStats(
            name=lv.name, loads=lv.loads * factor, stores=lv.stores * factor,
            load_bits=lv.load_bits * factor, store_bits=lv.store_bits * factor,
            load_hits=lv.load_hits * factor, store_hits=lv.store_hits * factor,
        )
        for lv in stats.levels
    ]
    scaled = HierarchyStats(levels=scaled_levels,
                            references=stats.references * factor)
    import pytest

    assert amat_ns(scaled, bindings) == pytest.approx(
        amat_ns(stats, bindings), rel=1e-12
    )


@given(hierarchy_case())
@settings(max_examples=60, deadline=None)
def test_extra_memory_traffic_never_reduces_amat(case):
    stats, bindings = case
    mem = stats.levels[1]
    heavier = HierarchyStats(
        levels=[
            stats.levels[0],
            LevelStats(
                name="MEM", loads=mem.loads + 1000, stores=mem.stores,
                load_bits=mem.load_bits + 1000 * 512,
                store_bits=mem.store_bits,
                load_hits=mem.load_hits + 1000, store_hits=mem.store_hits,
            ),
        ],
        references=stats.references,
    )
    assert amat_ns(heavier, bindings) >= amat_ns(stats, bindings)


@given(hierarchy_case())
@settings(max_examples=60, deadline=None)
def test_dynamic_energy_additive_over_levels(case):
    stats, bindings = case
    breakdown = dynamic_energy_breakdown_pj(stats, bindings)
    assert sum(breakdown.values()) == dynamic_energy_pj(stats, bindings)
    assert all(v >= 0 for v in breakdown.values())


@given(hierarchy_case(), hierarchy_case())
@settings(max_examples=60, deadline=None)
def test_edp_consistency(case_a, case_b):
    stats_a, bindings_a = case_a
    stats_b, _ = case_b
    # Evaluate case A against a reference built from the same stream
    # (same reference count is required by finalize).
    raw = evaluate_stats("A", stats_a, bindings_a)
    ev = finalize(raw, raw, META)
    assert ev.edp_js == ev.energy_j * ev.time_s


@given(hierarchy_case(), st.floats(min_value=1.1, max_value=50.0))
@settings(max_examples=60, deadline=None)
def test_slower_memory_monotone_in_time(case, slowdown):
    stats, bindings = case
    slower = dict(bindings)
    mem = bindings["MEM"]
    slower["MEM"] = LevelBinding(
        "MEM", mem.read_ns * slowdown, mem.write_ns * slowdown,
        mem.read_pj_per_bit, mem.write_pj_per_bit, mem.static_w,
    )
    ref = evaluate_stats("REF", stats, bindings)
    slow = evaluate_stats("SLOW", stats, slower)
    ev = finalize(slow, ref, META)
    assert ev.time_norm >= 1.0

"""Runner on-disk trace cache tests."""

import pytest

from repro.designs.configs import N_CONFIGS
from repro.designs.nmm import NMMDesign
from repro.experiments.runner import Runner
from repro.tech.params import PCM
from repro.workloads.registry import get_workload

SCALE = 1.0 / 8192


class TestTraceCache:
    def test_cache_files_written(self, tmp_path):
        runner = Runner(scale=SCALE, seed=4, trace_cache_dir=str(tmp_path))
        runner.prepare(get_workload("CG"))
        assert list(tmp_path.glob("CG-*.stream.rts"))
        assert list(tmp_path.glob("CG-*.regions.json"))

    def test_second_runner_reloads(self, tmp_path):
        first = Runner(scale=SCALE, seed=4, trace_cache_dir=str(tmp_path))
        trace_a = first.prepare(get_workload("CG"))
        second = Runner(scale=SCALE, seed=4, trace_cache_dir=str(tmp_path))
        trace_b = second.prepare(get_workload("CG"))
        assert trace_b.result.checks == {"cached": True}
        assert len(trace_b.result.stream) == len(trace_a.result.stream)
        # Region maps survive for the NDM oracle.
        assert [r.name for r in trace_b.result.tracer.regions] == [
            r.name for r in trace_a.result.tracer.regions
        ]

    def test_cached_evaluations_identical(self, tmp_path):
        design_args = dict(scale=SCALE)
        fresh = Runner(scale=SCALE, seed=4, trace_cache_dir=str(tmp_path))
        ev_a = fresh.evaluate(
            NMMDesign(PCM, N_CONFIGS["N6"], reference=fresh.reference,
                      **design_args),
            get_workload("CG"),
        )
        reloaded = Runner(scale=SCALE, seed=4, trace_cache_dir=str(tmp_path))
        ev_b = reloaded.evaluate(
            NMMDesign(PCM, N_CONFIGS["N6"], reference=reloaded.reference,
                      **design_args),
            get_workload("CG"),
        )
        assert ev_a.time_norm == ev_b.time_norm
        assert ev_a.energy_j == ev_b.energy_j

    def test_different_seed_not_shared(self, tmp_path):
        a = Runner(scale=SCALE, seed=4, trace_cache_dir=str(tmp_path))
        a.prepare(get_workload("CG"))
        b = Runner(scale=SCALE, seed=5, trace_cache_dir=str(tmp_path))
        trace = b.prepare(get_workload("CG"))
        assert trace.result.checks != {"cached": True}

    def test_oracle_works_from_cache(self, tmp_path):
        Runner(scale=SCALE, seed=4, trace_cache_dir=str(tmp_path)).prepare(
            get_workload("CG")
        )
        reloaded = Runner(scale=SCALE, seed=4, trace_cache_dir=str(tmp_path))
        placements = reloaded.ndm_oracle(get_workload("CG"), PCM)
        assert placements

    def test_no_cache_dir_no_files(self, tmp_path):
        runner = Runner(scale=SCALE, seed=4)
        runner.prepare(get_workload("CG"))
        assert not list(tmp_path.iterdir())


class TestCorruptCacheSelfHeal:
    def test_corrupt_entry_discarded_and_retraced(self, tmp_path):
        first = Runner(scale=SCALE, seed=4, trace_cache_dir=str(tmp_path))
        trace_a = first.prepare(get_workload("CG"))
        stream_path = next(iter(tmp_path.glob("CG-*.stream.rts")))
        # Corrupt a byte inside the first chunk's payload (chunks start
        # at the first page boundary), which the runner's eager
        # verify() pass must catch.
        data = bytearray(stream_path.read_bytes())
        data[4096 + 10] ^= 0xFF
        stream_path.write_bytes(bytes(data))

        healed = Runner(scale=SCALE, seed=4, trace_cache_dir=str(tmp_path))
        trace_b = healed.prepare(get_workload("CG"))
        # Re-traced (not served from the corrupt cache) ...
        assert trace_b.result.checks != {"cached": True}
        assert len(trace_b.result.stream) == len(trace_a.result.stream)
        # ... and the cache entry was rewritten cleanly for next time.
        third = Runner(scale=SCALE, seed=4, trace_cache_dir=str(tmp_path))
        assert third.prepare(get_workload("CG")).result.checks == {
            "cached": True
        }

    def test_discard_trace_removes_pair_and_sidecars(self, tmp_path):
        from repro.trace.io import discard_trace

        runner = Runner(scale=SCALE, seed=4, trace_cache_dir=str(tmp_path))
        runner.prepare(get_workload("CG"))
        name = next(iter(tmp_path.glob("CG-*.stream.rts"))).name
        name = name.removesuffix(".stream.rts")
        removed = discard_trace(tmp_path, name)
        assert len(removed) == 4  # two artifacts + two sidecars
        assert not list(tmp_path.iterdir())

"""Design construction and binding tests."""

import pytest

from repro.cache.partition import PartitionedMemory
from repro.designs.base import ReferenceSystem
from repro.designs.configs import (
    EH_CONFIGS,
    N_CONFIGS,
    NDM_DRAM_CAPACITY,
    EHConfig,
    NConfig,
)
from repro.designs.fourlc import FourLCDesign
from repro.designs.fourlcnvm import FourLCNVMDesign
from repro.designs.ndm import NDMDesign
from repro.designs.nmm import NMMDesign
from repro.designs.reference import ReferenceDesign
from repro.errors import ConfigError
from repro.partition.ranges import AddressRange
from repro.tech.params import DRAM, EDRAM, HMC, PCM, STTRAM
from repro.units import GiB, KiB, MiB

SCALE = 1 / 1024
FOOTPRINT = 2 * GiB


class TestReferenceSystem:
    def test_sandy_bridge_shape(self):
        ref = ReferenceSystem.sandy_bridge()
        assert ref.l1.capacity == 32 * KiB
        assert ref.l2.capacity == 256 * KiB
        # Per-core slice of the shared 20 MB L3.
        assert ref.l3.capacity == 20 * MiB // 8
        assert ref.line_size == 64

    def test_scaled_configs_preserve_pyramid(self):
        ref = ReferenceSystem.sandy_bridge()
        for scale in (1.0, 1 / 64, 1 / 256, 1 / 1024, 1 / 4096):
            l1, l2, l3 = ref.scaled_configs(scale)
            assert l1.capacity <= l2.capacity <= l3.capacity

    def test_l3_scales_linearly(self):
        ref = ReferenceSystem.sandy_bridge()
        _, _, l3 = ref.scaled_configs(1 / 256)
        assert l3.capacity == ref.l3.capacity // 256

    def test_bindings_cover_sram_levels(self):
        bindings = ReferenceSystem.sandy_bridge().bindings()
        assert set(bindings) == {"L1", "L2", "L3"}
        assert bindings["L1"].read_ns < bindings["L3"].read_ns

    def test_l3_latency_is_of_physical_array(self):
        """L3 latency reflects the full shared 20 MB structure."""
        from repro.tech.minicacti import estimate_sram_cache

        bindings = ReferenceSystem.sandy_bridge().bindings()
        full = estimate_sram_cache(20 * MiB, 20, 64)
        assert bindings["L3"].read_ns == pytest.approx(full.access_ns)


class TestConfigTables:
    def test_eh_count_and_values(self):
        assert len(EH_CONFIGS) == 8
        assert EH_CONFIGS["EH1"].capacity == 16 * MiB
        assert EH_CONFIGS["EH1"].page_size == 64
        assert EH_CONFIGS["EH6"].page_size == 2048
        assert EH_CONFIGS["EH7"].capacity == 8 * MiB
        assert EH_CONFIGS["EH8"].capacity == 4 * MiB  # documented deviation

    def test_n_count_and_values(self):
        assert len(N_CONFIGS) == 9
        assert N_CONFIGS["N1"].dram_capacity == 128 * MiB
        assert N_CONFIGS["N3"].dram_capacity == 512 * MiB
        assert N_CONFIGS["N6"].page_size == 512
        assert N_CONFIGS["N9"].page_size == 64

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            EHConfig("X", 0, 64)
        with pytest.raises(ConfigError):
            NConfig("X", 128, 100)

    def test_describe(self):
        assert "EH1" in EH_CONFIGS["EH1"].describe()
        assert "512B" in N_CONFIGS["N6"].describe()


class TestReferenceDesign:
    def test_hierarchy_shape(self):
        h = ReferenceDesign(scale=SCALE).build()
        assert h.level_names == ["L1", "L2", "L3", "DRAM"]

    def test_dram_sized_to_footprint(self):
        d = ReferenceDesign(scale=SCALE)
        bindings = d.bindings(FOOTPRINT)
        assert bindings["DRAM"].static_w == pytest.approx(
            DRAM.static_power_w(FOOTPRINT)
        )

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            ReferenceDesign(scale=0)
        with pytest.raises(ConfigError):
            ReferenceDesign(scale=2.0)


class TestFourLC:
    def test_shape(self):
        d = FourLCDesign(EDRAM, EH_CONFIGS["EH1"], scale=SCALE)
        assert d.build().level_names == ["L1", "L2", "L3", "L4", "DRAM"]

    def test_bindings(self):
        d = FourLCDesign(HMC, EH_CONFIGS["EH2"], scale=SCALE)
        b = d.bindings(FOOTPRINT)
        assert b["L4"].read_ns == HMC.read_delay_ns
        assert b["L4"].static_w == pytest.approx(
            HMC.static_power_w(16 * MiB)
        )
        assert b["DRAM"].read_ns == DRAM.read_delay_ns

    def test_nonvolatile_l4_rejected(self):
        with pytest.raises(ConfigError):
            FourLCDesign(PCM, EH_CONFIGS["EH1"], scale=SCALE)

    def test_sim_key_excludes_technology(self):
        a = FourLCDesign(EDRAM, EH_CONFIGS["EH1"], scale=SCALE)
        b = FourLCDesign(HMC, EH_CONFIGS["EH1"], scale=SCALE)
        assert a.sim_key() == b.sim_key()
        assert a.name != b.name

    def test_l4_is_sectored_and_hashed(self):
        d = FourLCDesign(EDRAM, EH_CONFIGS["EH6"], scale=SCALE)
        cfg = d.l4_config()
        assert cfg.sector_size == 64
        assert cfg.hashed_sets


class TestNMM:
    def test_shape(self):
        d = NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE)
        assert d.build().level_names == ["L1", "L2", "L3", "DRAM$", "NVM"]

    def test_bindings(self):
        d = NMMDesign(PCM, N_CONFIGS["N3"], scale=SCALE)
        b = d.bindings(FOOTPRINT)
        assert b["NVM"].write_ns == 100.0
        assert b["NVM"].static_w == 0.0
        assert b["DRAM$"].static_w == pytest.approx(
            DRAM.static_power_w(512 * MiB)
        )

    def test_sim_key_shared_across_nvm_techs(self):
        a = NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE)
        b = NMMDesign(STTRAM, N_CONFIGS["N6"], scale=SCALE)
        assert a.sim_key() == b.sim_key()

    def test_page_smaller_than_line_rejected(self):
        with pytest.raises(ConfigError):
            NMMDesign(PCM, NConfig("X", 128 * MiB, 32), scale=SCALE)


class TestFourLCNVM:
    def test_shape_has_no_dram(self):
        d = FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH1"], scale=SCALE)
        names = d.build().level_names
        assert names == ["L1", "L2", "L3", "L4", "NVM"]
        assert "DRAM" not in names

    def test_static_power_excludes_dram(self):
        d = FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH1"], scale=SCALE)
        b = d.bindings(FOOTPRINT)
        total_static = sum(x.static_w for x in b.values())
        ref_static = sum(
            x.static_w
            for x in ReferenceDesign(scale=SCALE).bindings(FOOTPRINT).values()
        )
        assert total_static < ref_static  # the design's selling point

    def test_nonvolatile_cache_rejected(self):
        with pytest.raises(ConfigError):
            FourLCNVMDesign(PCM, PCM, EH_CONFIGS["EH1"], scale=SCALE)


class TestNDM:
    def ranges(self):
        return [AddressRange(0x1000_0000, 0x2000_0000, "hot")]

    def test_shape(self):
        d = NDMDesign(PCM, self.ranges(), scale=SCALE)
        assert d.build().level_names == ["L1", "L2", "L3", "DRAMpart", "NVMpart"]

    def test_memory_is_partitioned(self):
        d = NDMDesign(PCM, self.ranges(), scale=SCALE)
        assert isinstance(d.memory(), PartitionedMemory)

    def test_routing_matches_ranges(self):
        d = NDMDesign(PCM, self.ranges(), scale=SCALE)
        memory = d.memory()
        import numpy as np

        routes = memory.route(
            np.array([0x1000_0000, 0x0500_0000], dtype=np.uint64)
        )
        assert routes.tolist() == [1, 0]

    def test_bindings(self):
        d = NDMDesign(STTRAM, self.ranges(), scale=SCALE)
        b = d.bindings(FOOTPRINT)
        assert b["NVMpart"].read_ns == STTRAM.read_delay_ns
        assert b["DRAMpart"].static_w == pytest.approx(
            DRAM.static_power_w(NDM_DRAM_CAPACITY)
        )

    def test_nvm_bytes(self):
        d = NDMDesign(PCM, self.ranges(), scale=SCALE)
        assert d.nvm_bytes() == 0x1000_0000

    def test_sim_key_includes_ranges_not_tech(self):
        a = NDMDesign(PCM, self.ranges(), scale=SCALE)
        b = NDMDesign(STTRAM, self.ranges(), scale=SCALE)
        c = NDMDesign(PCM, [], scale=SCALE)
        assert a.sim_key() == b.sim_key()
        assert a.sim_key() != c.sim_key()

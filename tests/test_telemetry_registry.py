"""Metric instruments: counters, gauges, histograms, and the registry."""

from __future__ import annotations

import threading

import pytest

from repro.errors import TelemetryError
from repro.telemetry.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)

pytestmark = pytest.mark.telemetry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("repro_cells_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("repro_cells_total")
        with pytest.raises(TelemetryError, match="cannot decrease"):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_pending")
        gauge.set(10)
        gauge.dec()
        gauge.inc(0.5)
        assert gauge.value == 9.5


class TestHistogram:
    def test_observations_land_in_correct_buckets(self):
        hist = MetricsRegistry().histogram(
            "repro_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        # Non-cumulative per-bucket counts, final slot is +Inf.
        assert hist.counts == [1, 1, 1, 1]
        assert hist.cumulative_counts() == [1, 2, 3, 4]
        assert hist.count == 4
        assert hist.sum == pytest.approx(55.55)

    def test_boundary_value_counts_as_le(self):
        hist = MetricsRegistry().histogram("repro_seconds", buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert hist.counts == [1, 0, 0]

    def test_rejects_non_increasing_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError, match="strictly increasing"):
            registry.histogram("repro_bad", buckets=(1.0, 1.0))
        with pytest.raises(TelemetryError, match="strictly increasing"):
            registry.histogram("repro_worse", buckets=(2.0, 1.0))

    def test_accepts_increasing_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_ok", buckets=(0.001, 0.01, 0.1))
        assert hist.buckets == (0.001, 0.01, 0.1)


class TestRegistry:
    def test_same_name_and_labels_return_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_cells_total", status="ok")
        b = registry.counter("repro_cells_total", status="ok")
        c = registry.counter("repro_cells_total", status="failed")
        assert a is b
        assert a is not c

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x", design="NMM", workload="CG")
        b = registry.counter("repro_x", workload="CG", design="NMM")
        assert a is b

    def test_name_is_usable_as_a_label_key(self):
        # Span metrics label by span *name*; the positional-only
        # metric-name parameter must not shadow it.
        registry = MetricsRegistry()
        counter = registry.counter("repro_spans_total", name="runner.trace")
        assert counter.labels == {"name": "runner.trace"}

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_thing")
        with pytest.raises(TelemetryError, match="already registered"):
            registry.gauge("repro_thing")

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(TelemetryError, match="invalid metric name"):
            registry.counter("repro thing")
        with pytest.raises(TelemetryError, match="invalid metric name"):
            registry.counter("")

    def test_snapshot_is_plain_data_in_stable_order(self):
        registry = MetricsRegistry()
        registry.counter("repro_b").inc(2)
        registry.gauge("repro_a").set(1)
        snap = registry.snapshot()
        assert [e["name"] for e in snap] == ["repro_a", "repro_b"]
        assert snap[0] == {
            "name": "repro_a", "kind": "gauge", "labels": {}, "value": 1.0,
        }

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_concurrent_total")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("repro_cells_total", status="ok").inc(3)
        registry.gauge("repro_pending").set(2.5)
        text = registry.render_prometheus()
        assert "# TYPE repro_cells_total counter" in text
        assert 'repro_cells_total{status="ok"} 3' in text
        assert "# TYPE repro_pending gauge" in text
        assert "repro_pending 2.5" in text
        assert text.endswith("\n")

    def test_histogram_lines_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_seconds", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(50.0)
        text = registry.render_prometheus()
        assert 'repro_seconds_bucket{le="1.0"} 1' in text
        assert 'repro_seconds_bucket{le="10.0"} 2' in text
        assert 'repro_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_seconds_sum 55.5" in text
        assert "repro_seconds_count 3" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x", label='a"b\\c\nd').inc()
        text = registry.render_prometheus()
        assert 'label="a\\"b\\\\c\\nd"' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestNullRegistry:
    def test_shared_noop_instrument(self):
        null = NullRegistry()
        counter = null.counter("repro_anything", status="ok")
        gauge = null.gauge("repro_other")
        hist = null.histogram("repro_h")
        assert counter is gauge is hist  # one shared instance
        counter.inc(5)
        gauge.set(3)
        gauge.dec()
        hist.observe(1.0)
        assert counter.value == 0.0
        assert null.snapshot() == []
        assert null.render_prometheus() == ""

    def test_enabled_flags(self):
        assert MetricsRegistry().enabled is True
        assert NULL_REGISTRY.enabled is False

"""Scalar vs set-parallel engine: full-hierarchy differential tests.

The setpar engine promises bit-identical *hierarchy* behaviour, not
just per-level agreement: identical :class:`HierarchyStats` for every
built-in design family, identical downstream request order (so every
lower level sees the exact same stream), and identical results through
the SimPlan shared-prefix capture and a process-parallel sweep resume.
These tests pin that promise on real traced workloads.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.designs.configs import EH_CONFIGS, N_CONFIGS
from repro.designs.deephybrid import DeepHybridDesign
from repro.designs.fourlc import FourLCDesign
from repro.designs.fourlcnvm import FourLCNVMDesign
from repro.designs.ndm import NDMDesign
from repro.designs.nmm import NMMDesign
from repro.designs.reference import ReferenceDesign
from repro.errors import ConfigError
from repro.experiments.runner import CapturingMemory, Runner
from repro.experiments.sweep import run_sweep
from repro.cache.hierarchy import Hierarchy
from repro.partition.ranges import AddressRange
from repro.resilience import Journal, SweepExecutor
from repro.tech.params import EDRAM, PCM
from repro.trace.stream import AddressStream
from repro.workloads.registry import get_workload

SCALE = 1.0 / 8192

ENGINES = ("scalar", "setpar")


def all_designs(reference, engine):
    """One member of every built-in design family."""
    return [
        ReferenceDesign(scale=SCALE, reference=reference, engine=engine),
        NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE, reference=reference,
                  engine=engine),
        FourLCDesign(EDRAM, EH_CONFIGS["EH4"], scale=SCALE,
                     reference=reference, engine=engine),
        FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH4"], scale=SCALE,
                        reference=reference, engine=engine),
        DeepHybridDesign(EDRAM, PCM, EH_CONFIGS["EH1"], N_CONFIGS["N6"],
                         scale=SCALE, reference=reference, engine=engine),
        NDMDesign(PCM, [AddressRange(0x1000_0000, 0x2000_0000, "hot")],
                  scale=SCALE, reference=reference, engine=engine),
    ]


@pytest.fixture(scope="module")
def trace_cache(tmp_path_factory):
    """Shared on-disk trace cache so every runner reuses one tracing."""
    return str(tmp_path_factory.mktemp("traces"))


@pytest.fixture(scope="module")
def workloads():
    return [get_workload("CG"), get_workload("SP")]


def make_runner(trace_cache, engine, drain=False):
    return Runner(scale=SCALE, seed=5, trace_cache_dir=trace_cache,
                  drain=drain, engine=engine)


class TestEngineValidation:
    def test_runner_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            Runner(engine="simd")

    def test_design_rejects_unknown_engine(self):
        with pytest.raises(ConfigError):
            ReferenceDesign(scale=SCALE, engine="simd")

    def test_setpar_request_downgrades_on_sectored_lower_levels(self):
        """Sectored page caches cannot run setpar; a design-level
        request must quietly fall back instead of raising."""
        design = NMMDesign(PCM, N_CONFIGS["N6"], engine="setpar")
        for cache in design.lower_caches():
            if cache.config.sector_size != cache.config.block_size:
                assert cache.engine == "scalar"


class TestHierarchyStatsIdentical:
    @pytest.mark.parametrize("drain", [False, True])
    def test_every_family_both_drain_modes(self, trace_cache, workloads,
                                           drain):
        """Every design family, two workloads, both drain modes:
        HierarchyStats must match field-for-field."""
        runners = {
            eng: make_runner(trace_cache, eng, drain=drain)
            for eng in ENGINES
        }
        for workload in workloads:
            stats = {
                eng: [
                    runner.stats_for(design, workload).as_dict()
                    for design in all_designs(runner.reference, eng)
                ]
                for eng, runner in runners.items()
            }
            assert stats["scalar"] == stats["setpar"]


class TestEmissionOrderIdentical:
    def test_post_hierarchy_stream_identical(self, workloads):
        """The request stream reaching the terminal memory — contents
        and order — must not depend on the engine."""
        rng = np.random.default_rng(11)
        n = 20_000
        addrs = rng.integers(0, 1 << 14, size=n).astype(np.uint64) * 64
        kinds = (rng.random(n) < 0.3).astype(np.uint8)
        stream = AddressStream.from_arrays(addrs, 8, kinds)

        captured = {}
        for eng in ENGINES:
            design = NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                               engine=eng)
            memory = CapturingMemory()
            hierarchy = Hierarchy(
                design.reference.build_caches(SCALE, engine=eng)
                + design.lower_caches(),
                memory,
            )
            hierarchy.run(stream, drain=True)
            captured[eng] = list(memory.captured.chunks())

        assert len(captured["scalar"]) == len(captured["setpar"])
        for a, b in zip(captured["scalar"], captured["setpar"]):
            assert np.array_equal(a.addresses, b.addresses)
            assert np.array_equal(a.sizes, b.sizes)
            assert np.array_equal(a.is_store, b.is_store)


class TestSimPlanIdentical:
    def test_plan_prefix_capture_matches_scalar(self, trace_cache,
                                                workloads):
        """simulate_designs (shared-prefix SimPlan execution) under
        setpar equals per-design scalar simulation."""
        workload = workloads[0]
        scalar = make_runner(trace_cache, "scalar")
        setpar = make_runner(trace_cache, "setpar")
        designs_sp = all_designs(setpar.reference, "setpar")
        setpar.simulate_designs(designs_sp, workload)
        for d_sc, d_sp in zip(
            all_designs(scalar.reference, "scalar"), designs_sp
        ):
            assert (
                scalar.stats_for(d_sc, workload).as_dict()
                == setpar.stats_for(d_sp, workload).as_dict()
            )


class TestFIFOSetpar:
    """FIFO joined the set-parallel engine: same bit-identical promise
    as LRU, against the independent policy-object implementation."""

    @staticmethod
    def _make(policy_engine, sets, ways, hashed):
        from repro.cache.config import CacheConfig
        from repro.cache.setassoc import SetAssociativeCache

        return SetAssociativeCache(CacheConfig(
            "T", sets * ways * 64, ways, 64, hashed_sets=hashed,
            policy="fifo", engine=policy_engine,
        ))

    def test_auto_resolves_fifo_to_setpar(self):
        assert self._make("auto", 64, 8, False).engine == "setpar"

    def test_fifo_differential_vs_policy_loop(self, monkeypatch):
        """Stats, emitted request stream, resident state, and dirty
        state must match the scalar policy loop exactly — vector
        rounds forced even on tiny caches."""
        import repro.cache.setassoc as setassoc_mod
        from repro.trace.events import AccessBatch

        monkeypatch.setattr(setassoc_mod, "SETPAR_MIN_LANES", 2)
        rng = np.random.default_rng(7)
        for trial in range(40):
            sets = int(rng.choice([4, 16, 64]))
            ways = int(rng.choice([1, 2, 4, 8]))
            hashed = bool(rng.integers(0, 2))
            n = int(rng.integers(64, 4000))
            span = int(rng.choice([64, 512, 4096]))
            blocks = rng.zipf(1.2, size=n) % span
            addrs = blocks.astype(np.uint64) * 64
            kinds = (rng.random(n) < 0.4).astype(np.uint8)

            scalar = self._make("scalar", sets, ways, hashed)
            setpar = self._make("setpar", sets, ways, hashed)
            cut = int(rng.integers(1, n))
            for lo, hi in ((0, cut), (cut, n)):
                batch = AccessBatch.from_lists(
                    addrs[lo:hi], 8, kinds[lo:hi]
                )
                out_sc = scalar.process(batch)
                out_sp = setpar.process(batch)
                assert np.array_equal(
                    out_sc.addresses, out_sp.addresses
                ), f"trial {trial}"
                assert np.array_equal(out_sc.is_store, out_sp.is_store)
            assert vars(scalar.stats) == vars(setpar.stats), f"trial {trial}"
            for si in range(sets):
                assert scalar._policy.contents(si) == setpar._sets[si]
            assert np.array_equal(
                scalar.flush_dirty().addresses,
                setpar.flush_dirty().addresses,
            )

    def test_fifo_hierarchy_identical(self):
        """A two-level FIFO hierarchy agrees across engines — stats and
        the terminal request stream both."""
        rng = np.random.default_rng(13)
        n = 30_000
        addrs = rng.integers(0, 1 << 13, size=n).astype(np.uint64) * 64
        kinds = (rng.random(n) < 0.3).astype(np.uint8)
        stream = AddressStream.from_arrays(addrs, 8, kinds)

        from repro.cache.config import CacheConfig
        from repro.cache.setassoc import SetAssociativeCache

        captured = {}
        stats = {}
        for eng in ENGINES:
            levels = [
                SetAssociativeCache(CacheConfig(
                    "C1", 64 * 1024, 8, 64, policy="fifo", engine=eng,
                )),
                SetAssociativeCache(CacheConfig(
                    "C2", 256 * 1024, 8, 64, hashed_sets=True,
                    policy="fifo", engine=eng,
                )),
            ]
            memory = CapturingMemory()
            Hierarchy(levels, memory).run(stream, drain=True)
            captured[eng] = list(memory.captured.chunks())
            stats[eng] = [vars(level.stats) for level in levels]

        assert stats["scalar"] == stats["setpar"]
        assert len(captured["scalar"]) == len(captured["setpar"])
        for a, b in zip(captured["scalar"], captured["setpar"]):
            assert np.array_equal(a.addresses, b.addresses)
            assert np.array_equal(a.is_store, b.is_store)


@pytest.mark.resilience
class TestSweepResumeAcrossEngines:
    def test_parallel_sweep_and_cross_engine_resume(self, trace_cache,
                                                    workloads, tmp_path):
        """A --workers sweep run with setpar matches scalar, and a
        journal written by a scalar run resumes cleanly under a setpar
        runner (engine choice is deliberately not part of the cell
        key — the engines are bit-identical)."""
        designs = lambda runner, eng: [
            NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                      reference=runner.reference, engine=eng),
            FourLCDesign(EDRAM, EH_CONFIGS["EH4"], scale=SCALE,
                         reference=runner.reference, engine=eng),
        ]
        journal = Journal(tmp_path / "engines.jsonl")
        sc_runner = make_runner(trace_cache, "scalar")
        sc = SweepExecutor(sc_runner, journal=journal, workers=2).run(
            designs(sc_runner, "scalar"), workloads
        )
        assert all(o.ok for o in sc.outcomes)

        sp_runner = make_runner(trace_cache, "setpar")
        resumed = SweepExecutor(sp_runner, journal=journal, workers=2).run(
            designs(sp_runner, "setpar"), workloads
        )
        assert all(o.from_journal for o in resumed.outcomes)
        assert [o.key for o in resumed.outcomes] == [
            o.key for o in sc.outcomes
        ]

        fresh = run_sweep(
            make_runner(trace_cache, "setpar"),
            designs(sp_runner, "setpar"), workloads, workers=2,
        )
        sc_fresh = run_sweep(
            make_runner(trace_cache, "scalar"),
            designs(sc_runner, "scalar"), workloads,
        )
        for a, b in zip(sc_fresh, fresh):
            assert dataclasses.asdict(a.evaluation) == dataclasses.asdict(
                b.evaluation
            )

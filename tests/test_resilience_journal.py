"""Result journal: content-hash keys, atomic append, tolerant resume."""

import json

import pytest

from repro.errors import SweepError
from repro.model.evaluate import Evaluation
from repro.resilience import (
    SCHEMA_VERSION,
    Journal,
    JournalEntry,
    cell_key,
)

pytestmark = pytest.mark.resilience


def make_evaluation(design="D", workload="W"):
    return Evaluation(
        design_name=design, workload=workload, time_s=1.0, dynamic_j=2.0,
        static_j=3.0, energy_j=5.0, edp_js=5.0, amat_ns=1.5, time_norm=1.0,
        energy_norm=0.5, dynamic_norm=0.4, static_norm=0.6, edp_norm=0.5,
    )


def make_entry(key="k1", status="ok", **overrides):
    fields = dict(
        key=key, design="D", workload="W", scale=0.001, seed=0,
        status=status, attempts=1, duration_s=0.5,
    )
    fields.update(overrides)
    return JournalEntry(**fields)


class TestCellKey:
    def test_deterministic(self):
        assert cell_key("D", "S", "W", 0.1, 0) == cell_key("D", "S", "W", 0.1, 0)

    def test_sensitive_to_every_component(self):
        base = cell_key("D", "S", "W", 0.1, 0)
        assert cell_key("D2", "S", "W", 0.1, 0) != base
        assert cell_key("D", "S2", "W", 0.1, 0) != base
        assert cell_key("D", "S", "W2", 0.1, 0) != base
        assert cell_key("D", "S", "W", 0.2, 0) != base
        assert cell_key("D", "S", "W", 0.1, 1) != base


class TestEntryRoundtrip:
    def test_json_roundtrip(self):
        entry = make_entry(evaluation={"time_norm": 1.0})
        assert JournalEntry.from_json(entry.to_json()) == entry

    def test_schema_stamped(self):
        payload = json.loads(make_entry().to_json())
        assert payload["schema"] == SCHEMA_VERSION

    def test_unknown_schema_rejected(self):
        payload = json.loads(make_entry().to_json())
        payload["schema"] = 99
        with pytest.raises(SweepError, match="schema"):
            JournalEntry.from_json(json.dumps(payload))

    def test_malformed_line_rejected(self):
        with pytest.raises(SweepError):
            JournalEntry.from_json("{not json")

    def test_evaluation_reconstruction(self):
        import dataclasses

        evaluation = make_evaluation()
        entry = make_entry(evaluation=dataclasses.asdict(evaluation))
        assert entry.load_evaluation() == evaluation

    def test_no_evaluation_for_failures(self):
        assert make_entry(status="failed").load_evaluation() is None


class TestJournalFile:
    def test_append_and_load(self, tmp_path):
        journal = Journal(tmp_path / "sweep.jsonl")
        journal.append(make_entry("a"))
        journal.append(make_entry("b", status="failed", error="boom"))
        loaded = Journal(tmp_path / "sweep.jsonl").load()
        assert set(loaded) == {"a", "b"}
        assert loaded["b"].error == "boom"

    def test_later_entries_win(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append(make_entry("a", status="failed"))
        journal.append(make_entry("a", status="ok"))
        assert Journal(journal.path).load()["a"].status == "ok"

    def test_creates_parent_directories(self, tmp_path):
        journal = Journal(tmp_path / "deep" / "nested" / "j.jsonl")
        journal.append(make_entry("a"))
        assert journal.path.exists()

    def test_missing_file_loads_empty(self, tmp_path):
        assert Journal(tmp_path / "absent.jsonl").load() == {}

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append(make_entry("a"))
        with open(path, "a") as handle:
            handle.write('{"schema": 1, "key": "tor')  # torn mid-append
        loaded = Journal(path).load()
        assert set(loaded) == {"a"}

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append(make_entry("a"))
        journal.append(make_entry("b"))
        lines = path.read_text().splitlines()
        lines[0] = "garbage"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SweepError, match="delete"):
            Journal(path).load()

    def test_append_preserves_existing_entries(self, tmp_path):
        path = tmp_path / "j.jsonl"
        Journal(path).append(make_entry("a"))
        other = Journal(path)  # fresh handle, as on resume
        other.append(make_entry("b"))
        assert set(Journal(path).load()) == {"a", "b"}

"""Synthetic workload adapter tests."""

import pytest

from repro.designs.configs import N_CONFIGS
from repro.designs.nmm import NMMDesign
from repro.errors import ConfigError
from repro.experiments.runner import Runner
from repro.tech.params import PCM
from repro.trace.synthetic import zipf_stream
from repro.workloads.synthetic import (
    SyntheticWorkload,
    pointer_chase_workload,
    streaming_workload,
    uniform_random_workload,
)

SCALE = 1.0 / 8192


class TestAdapter:
    def test_trace_contract(self):
        workload = uniform_random_workload()
        res = workload.trace(scale=SCALE, seed=1)
        assert len(res.stream) > 1000
        assert res.checks["synthetic"]
        assert res.tracer.regions  # oracle-compatible region map

    def test_scales_with_footprint(self):
        workload = uniform_random_workload()
        small = workload.trace(scale=SCALE, seed=1).stream.stats()
        large = workload.trace(scale=SCALE * 4, seed=1).stream.stats()
        assert large.footprint_bytes > 2 * small.footprint_bytes

    def test_custom_generator(self):
        workload = SyntheticWorkload(
            "Zipf",
            lambda n, fp, seed: zipf_stream(
                n, footprint_bytes=fp, alpha=1.3, seed=seed
            ),
            footprint_gb=1.0,
            t_ref_s=10.0,
        )
        res = workload.trace(scale=SCALE, seed=0)
        assert len(res.stream) > 0
        assert workload.info.suite == "Synthetic"

    def test_invalid_events_per_byte(self):
        with pytest.raises(ConfigError):
            SyntheticWorkload("X", lambda n, fp, s: None, events_per_byte=0)


class TestRunnerIntegration:
    def test_full_evaluation_pipeline(self):
        runner = Runner(scale=SCALE, seed=3)
        workload = streaming_workload()
        design = NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                           reference=runner.reference)
        ev = runner.evaluate(design, workload)
        assert ev.time_norm > 0
        assert ev.energy_j > 0

    def test_latency_vs_capacity_stress_differ(self):
        """With 1 KB pages (N5) the DRAM cache's spatial reach filters
        nearly all of streaming's misses but none of the pointer
        chase's (every access lands on a fresh page), so the chase must
        pay more NVM latency."""
        from repro.trace.synthetic import sequential_stream

        # Loads-only streaming isolates the latency story from PCM's
        # write asymmetry.
        read_stream = SyntheticWorkload(
            "ReadStream",
            lambda n, fp, seed: sequential_stream(n, seed=seed),
            description="loads-only streaming",
        )
        runner = Runner(scale=SCALE, seed=3)
        design = NMMDesign(PCM, N_CONFIGS["N5"], scale=SCALE,
                           reference=runner.reference)
        chase = runner.evaluate(design, pointer_chase_workload())
        stream = runner.evaluate(design, read_stream)
        assert chase.time_norm > stream.time_norm
        chase_stats = runner.stats_for(design, pointer_chase_workload())
        stream_stats = runner.stats_for(design, read_stream)
        assert (
            stream_stats.level("DRAM$").hit_rate
            > chase_stats.level("DRAM$").hit_rate
        )

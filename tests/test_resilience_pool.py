"""Supervised worker pool: crash recovery, poison cells, drain.

Chaos tests drive the supervisor with real worker processes and real
SIGKILLs (via :class:`FaultInjector`'s process faults), so everything
here exercises the actual failure modes: dead workers, poison cells,
hung cells past their deadline, pool exhaustion, and graceful drain.
The faults are latched through ``tmp_path`` files where a fault must
fire exactly once across the whole campaign.
"""

import json
import os
import pickle
import signal
import threading
import time

import pytest

from repro.designs.configs import EH_CONFIGS, N_CONFIGS
from repro.designs.fourlc import FourLCDesign
from repro.designs.fourlcnvm import FourLCNVMDesign
from repro.designs.nmm import NMMDesign
from repro.errors import ConfigError
from repro.experiments.runner import Runner
from repro.resilience import (
    FaultInjector,
    Journal,
    PoolTuning,
    SupervisedPool,
    SweepExecutor,
    acquire_latch,
)
from repro.telemetry.core import RunContext, Telemetry, new_run_id
from repro.telemetry.observatory import aggregate_run
from repro.tech.params import EDRAM, PCM
from repro.workloads.registry import get_workload

pytestmark = pytest.mark.resilience

SCALE = 1.0 / 8192

#: Aggressive supervision timing so chaos tests stay fast.
FAST_TUNING = PoolTuning(
    heartbeat_interval_s=0.05,
    heartbeat_timeout_s=10.0,
    soft_grace_s=0.3,
    term_grace_s=0.5,
    tick_s=0.02,
    cancel_poll_s=0.01,
    shutdown_grace_s=5.0,
)


@pytest.fixture(scope="module")
def trace_cache(tmp_path_factory):
    """Shared on-disk trace cache so every runner reuses one tracing."""
    return str(tmp_path_factory.mktemp("traces"))


@pytest.fixture(scope="module")
def workloads():
    return [get_workload("CG"), get_workload("SP")]


def make_runner(trace_cache):
    return Runner(scale=SCALE, seed=5, trace_cache_dir=trace_cache)


def make_designs(reference, n=2):
    designs = [
        NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE, reference=reference),
        FourLCDesign(EDRAM, EH_CONFIGS["EH4"], scale=SCALE,
                     reference=reference),
        FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH4"], scale=SCALE,
                        reference=reference),
    ]
    return designs[:n]


def read_events(directory):
    """The parent run log's events, parsed."""
    path = directory / "events.jsonl"
    if not path.exists():
        return []
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


def event_kinds(directory):
    return [e.get("kind") for e in read_events(directory)]


class TestSupervisedHappyPath:
    def test_campaign_completes_with_supervision_telemetry(
        self, trace_cache, workloads, tmp_path
    ):
        runner = make_runner(trace_cache)
        designs = make_designs(runner.reference)
        tel = Telemetry(tmp_path / "tel",
                        run_context=RunContext(new_run_id()))
        journal = Journal(tmp_path / "j.jsonl")
        result = SweepExecutor(
            runner, journal=journal, workers=2, telemetry=tel,
            pool_tuning=FAST_TUNING,
        ).run(designs, workloads)
        tel.close()

        assert all(o.ok for o in result.outcomes), result.report()
        assert result.restarts == 0 and result.requeues == 0
        assert not result.drained
        kinds = event_kinds(tmp_path / "tel")
        assert kinds.count("worker_spawned") == 2
        assert "sweep_supervised" in kinds
        # Worker directories exist and the whole tree aggregates.
        aggregate = aggregate_run(tmp_path / "tel")
        assert aggregate.cell_status_counts().get("ok") == 4.0
        assert all(
            v == 0.0 for v in aggregate.supervision_counts().values()
        )

    def test_journal_matches_serial_run(self, trace_cache, workloads,
                                        tmp_path):
        runner = make_runner(trace_cache)
        designs = make_designs(runner.reference)
        seq_journal = Journal(tmp_path / "seq.jsonl")
        SweepExecutor(runner, journal=seq_journal).run(designs, workloads)
        sup_journal = Journal(tmp_path / "sup.jsonl")
        SweepExecutor(
            make_runner(trace_cache), journal=sup_journal, workers=2,
            pool_tuning=FAST_TUNING,
        ).run(designs, workloads)
        seq = seq_journal.load()
        sup = sup_journal.load()
        assert set(seq) == set(sup)
        for key, entry in seq.items():
            assert (entry.status, entry.evaluation) == (
                sup[key].status, sup[key].evaluation
            )


class TestCrashRecovery:
    def test_sigkilled_worker_requeues_cell_and_campaign_completes(
        self, trace_cache, workloads, tmp_path
    ):
        """The acceptance chaos test: SIGKILL one worker mid-campaign.

        The dead worker's in-flight cell must be requeued and finish,
        the rest of the grid must complete, a resume must re-simulate
        nothing, and the merged telemetry must show the restart.
        """
        runner = make_runner(trace_cache)
        designs = make_designs(runner.reference)
        faults = FaultInjector().worker_kill_cell(
            designs[0].name, "CG", latch=tmp_path / "kill.latch"
        )
        tel = Telemetry(tmp_path / "tel",
                        run_context=RunContext(new_run_id()))
        journal = Journal(tmp_path / "j.jsonl")
        result = SweepExecutor(
            runner, journal=journal, workers=2, telemetry=tel,
            worker_faults=faults, pool_tuning=FAST_TUNING,
        ).run(designs, workloads)
        tel.close()

        assert all(o.ok for o in result.outcomes), result.report()
        assert result.requeues == 1
        assert result.restarts >= 1
        kinds = event_kinds(tmp_path / "tel")
        for kind in ("worker_died", "cell_requeued", "worker_respawned"):
            assert kind in kinds, kinds
        assert "supervision:" in result.report()

        # Merged telemetry conserves the story across the restart.
        aggregate = aggregate_run(tmp_path / "tel")
        assert aggregate.cell_status_counts().get("ok") == 4.0
        counts = aggregate.supervision_counts()
        assert counts["restarts"] == 1.0
        assert counts["requeues"] == 1.0
        assert counts["worker_deaths"] == 1.0
        assert counts["poisoned"] == 0.0

        # Exact resume: nothing re-simulates.
        again = SweepExecutor(
            make_runner(trace_cache), journal=journal, workers=2,
            pool_tuning=FAST_TUNING,
        ).run(designs, workloads)
        assert all(o.from_journal for o in again.outcomes)

    def test_supervision_events_do_not_clobber_provenance(
        self, trace_cache, workloads, tmp_path
    ):
        # Regression pin: supervision events carry ``pool_worker`` so
        # the RunContext ``worker`` stamp (the observatory's dedup key)
        # survives on every event.
        runner = make_runner(trace_cache)
        designs = make_designs(runner.reference, n=1)
        tel = Telemetry(tmp_path / "tel",
                        run_context=RunContext(new_run_id()))
        SweepExecutor(
            runner, workers=2, telemetry=tel, pool_tuning=FAST_TUNING,
        ).run(designs, workloads)
        tel.close()
        spawned = [
            e for e in read_events(tmp_path / "tel")
            if e.get("kind") == "worker_spawned"
        ]
        assert spawned
        assert all(e["worker"] == "root" for e in spawned)
        assert all(e["pool_worker"].startswith("worker-") for e in spawned)


class TestPoisonQuarantine:
    def test_cell_killing_successive_workers_is_quarantined(
        self, trace_cache, workloads, tmp_path
    ):
        runner = make_runner(trace_cache)
        designs = make_designs(runner.reference)
        # No latch: the cell kills every worker it lands on.
        faults = FaultInjector().worker_kill_cell(designs[0].name, "CG")
        tel = Telemetry(tmp_path / "tel",
                        run_context=RunContext(new_run_id()))
        journal = Journal(tmp_path / "j.jsonl")
        result = SweepExecutor(
            runner, journal=journal, workers=2, telemetry=tel,
            worker_faults=faults, poison_threshold=2,
            max_worker_restarts=4, pool_tuning=FAST_TUNING,
        ).run(designs, workloads)
        tel.close()

        by_cell = {(o.design, o.workload): o for o in result.outcomes}
        poisoned = by_cell[(designs[0].name, "CG")]
        assert poisoned.status == "poisoned"
        assert "poison_threshold=2" in poisoned.error
        others = [o for o in result.outcomes if o is not poisoned]
        assert others and all(o.ok for o in others)
        assert "cell_poisoned" in event_kinds(tmp_path / "tel")
        entry = journal.load()[poisoned.key]
        assert entry.status == "poisoned"
        assert "1 poisoned" in result.report()

        # The quarantined cell is retried on resume (it is not ok)
        # and completes once the fault is gone.
        again = SweepExecutor(
            make_runner(trace_cache), journal=journal, workers=2,
            pool_tuning=FAST_TUNING,
        ).run(designs, workloads)
        assert all(o.ok for o in again.outcomes)
        assert sum(1 for o in again.outcomes if not o.from_journal) == 1


class TestHungWorker:
    def test_watchdog_escalates_hung_cell_past_deadline(
        self, trace_cache, workloads, tmp_path
    ):
        runner = make_runner(trace_cache)
        designs = make_designs(runner.reference)
        faults = FaultInjector().worker_hang(
            designs[0].name, "CG", 60.0, latch=tmp_path / "hang.latch"
        )
        tel = Telemetry(tmp_path / "tel",
                        run_context=RunContext(new_run_id()))
        journal = Journal(tmp_path / "j.jsonl")
        result = SweepExecutor(
            runner, journal=journal, workers=2, telemetry=tel,
            worker_faults=faults, cell_timeout_s=2.0,
            pool_tuning=FAST_TUNING,
        ).run(designs, workloads)
        tel.close()

        by_cell = {(o.design, o.workload): o for o in result.outcomes}
        hung = by_cell[(designs[0].name, "CG")]
        assert hung.status == "timed_out"
        assert "deadline" in hung.error
        others = [o for o in result.outcomes if o is not hung]
        assert others and all(o.ok for o in others)
        assert "worker_hung" in event_kinds(tmp_path / "tel")

        # The latch already fired, so a resume completes the cell.
        again = SweepExecutor(
            make_runner(trace_cache), journal=journal, workers=2,
            pool_tuning=FAST_TUNING,
        ).run(designs, workloads)
        assert all(o.ok for o in again.outcomes)
        reran = [o for o in again.outcomes if not o.from_journal]
        assert [(o.design, o.workload) for o in reran] == [
            (designs[0].name, "CG")
        ]


class TestGracefulDrain:
    def test_sigterm_drains_to_an_exact_resume_journal(
        self, trace_cache, workloads, tmp_path
    ):
        runner = make_runner(trace_cache)
        designs = make_designs(runner.reference, n=3)
        faults = FaultInjector()
        for design in designs:
            faults.delay_cell(design.name, "SP", 1.5)
        tel = Telemetry(tmp_path / "tel",
                        run_context=RunContext(new_run_id()))
        journal = Journal(tmp_path / "j.jsonl")

        def send_sigterm_after_first_entry() -> None:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if journal.path.exists() and journal.load():
                    os.kill(os.getpid(), signal.SIGTERM)
                    return
                time.sleep(0.02)

        killer = threading.Thread(
            target=send_sigterm_after_first_entry, daemon=True
        )
        killer.start()
        result = SweepExecutor(
            runner, journal=journal, workers=2, telemetry=tel,
            worker_faults=faults, pool_tuning=FAST_TUNING,
        ).run(designs, workloads)
        killer.join(timeout=30.0)
        tel.close()

        assert result.drained
        assert "drained by signal" in result.report()
        skipped = [o for o in result.outcomes if o.status == "skipped"]
        assert skipped
        assert all("drained by signal" in o.error for o in skipped)
        assert "pool_drain" in event_kinds(tmp_path / "tel")
        entries = journal.load()
        assert 0 < len(entries) < len(result.outcomes)
        # Everything journalled finished for real before the drain.
        assert all(e.status == "ok" for e in entries.values())

        # Resume finishes the campaign, re-simulating nothing done.
        again = SweepExecutor(
            make_runner(trace_cache), journal=journal, workers=2,
            pool_tuning=FAST_TUNING,
        ).run(designs, workloads)
        assert all(o.ok for o in again.outcomes), again.report()
        reused = [o for o in again.outcomes if o.from_journal]
        assert len(reused) == len(entries)


class TestPoolExhaustion:
    def test_broken_pool_degrades_instead_of_aborting(
        self, trace_cache, workloads, tmp_path
    ):
        """The BrokenProcessPool regression: every worker dies, the
        restart budget runs out, and the campaign still returns a
        complete result instead of raising."""
        runner = make_runner(trace_cache)
        designs = make_designs(runner.reference)
        # Every (re)spawned worker dies on its first evaluation.
        faults = FaultInjector().worker_kill(1)
        tel = Telemetry(tmp_path / "tel",
                        run_context=RunContext(new_run_id()))
        result = SweepExecutor(
            runner, workers=2, telemetry=tel, worker_faults=faults,
            max_worker_restarts=1, poison_threshold=2,
            pool_tuning=FAST_TUNING,
        ).run(designs, workloads)
        tel.close()

        statuses = {o.status for o in result.outcomes}
        assert statuses <= {"failed", "poisoned"}
        exhausted = [
            o for o in result.outcomes
            if o.error and "worker pool exhausted" in o.error
        ]
        assert exhausted
        assert "pool_exhausted" in event_kinds(tmp_path / "tel")


class TestLegacyShardRecovery:
    def test_mid_shard_crash_keeps_finished_cells(
        self, trace_cache, workloads, tmp_path
    ):
        """supervise=False: a worker SIGKILL mid-shard recovers the
        shard's finished cells from the per-cell sidecar journal."""
        runner = make_runner(trace_cache)
        designs = make_designs(runner.reference)
        # Each shard worker dies on its second cell, after journalling
        # its first to the sidecar.
        faults = FaultInjector().worker_kill(2)
        journal = Journal(tmp_path / "j.jsonl")
        result = SweepExecutor(
            runner, journal=journal, workers=2, supervise=False,
            worker_faults=faults,
        ).run(designs, workloads)

        ok = [o for o in result.outcomes if o.ok]
        failed = [o for o in result.outcomes if o.status == "failed"]
        assert ok, "sidecar recovery produced no finished cells"
        assert failed
        assert all("worker process failed" in o.error for o in failed)
        assert not list(tmp_path.glob("j.jsonl.worker-*"))
        recovered = journal.load()
        for outcome in ok:
            assert recovered[outcome.key].status == "ok"

        # Resume completes the crashed cells and reuses the rest.
        again = SweepExecutor(
            make_runner(trace_cache), journal=journal, workers=2,
            supervise=False,
        ).run(designs, workloads)
        assert all(o.ok for o in again.outcomes), again.report()
        assert sum(1 for o in again.outcomes if o.from_journal) == len(ok)

    def test_stale_sidecars_absorbed_on_resume(self, trace_cache,
                                               workloads, tmp_path):
        """A dead *parent* leaves sidecars behind; the next campaign
        folds them into the main journal before resuming."""
        runner = make_runner(trace_cache)
        designs = make_designs(runner.reference)
        journal = Journal(tmp_path / "j.jsonl")
        done = SweepExecutor(
            runner, journal=Journal(tmp_path / "donor.jsonl")
        ).run(designs, workloads[:1])
        # Fabricate the post-crash state: results only in a sidecar.
        donor = Journal(tmp_path / "donor.jsonl")
        sidecar = Journal(f"{journal.path}.worker-0")
        for entry in donor.entries():
            sidecar.append(entry)

        result = SweepExecutor(
            make_runner(trace_cache), journal=journal, workers=2,
            pool_tuning=FAST_TUNING,
        ).run(designs, workloads)
        assert all(o.ok for o in result.outcomes)
        reused = [o for o in result.outcomes if o.from_journal]
        assert len(reused) == len(done.outcomes)
        assert not list(tmp_path.glob("j.jsonl.worker-*"))


class TestLiveObservability:
    def test_sse_client_sees_chaos_exactly_once_across_reconnect(
        self, trace_cache, workloads, tmp_path
    ):
        """The live-plane acceptance chaos test: an SSE client watching
        a campaign across a worker SIGKILL + respawn — with a mid-stream
        disconnect and a ``Last-Event-ID`` reconnect — sees
        ``worker_died`` and ``cell_requeued`` exactly once, and no
        ``(worker, seq)`` identity twice."""
        import urllib.request

        from repro.telemetry.live import TelemetryServer

        tel_dir = tmp_path / "tel"
        tel_dir.mkdir()
        server = TelemetryServer(tel_dir, keepalive_s=0.2).start()
        received: list[dict] = []
        stop = threading.Event()

        def client() -> None:
            last_id = None
            torn = False
            while not stop.is_set():
                headers = (
                    {"Last-Event-ID": last_id} if last_id else {}
                )
                request = urllib.request.Request(
                    server.url + "/events", headers=headers
                )
                try:
                    with urllib.request.urlopen(
                        request, timeout=30
                    ) as resp:
                        while not stop.is_set():
                            line = resp.readline().decode().strip()
                            if line.startswith("id: "):
                                last_id = line[4:]
                            elif line.startswith("data: "):
                                received.append(json.loads(line[6:]))
                                if not torn and len(received) >= 5:
                                    torn = True
                                    break  # tear the stream mid-run
                except OSError:
                    time.sleep(0.05)

        watcher = threading.Thread(target=client, daemon=True)
        watcher.start()

        runner = make_runner(trace_cache)
        designs = make_designs(runner.reference)
        faults = FaultInjector().worker_kill_cell(
            designs[0].name, "CG", latch=tmp_path / "kill.latch"
        )
        tel = Telemetry(tel_dir, run_context=RunContext(new_run_id()))
        result = SweepExecutor(
            runner, workers=2, telemetry=tel, worker_faults=faults,
            pool_tuning=FAST_TUNING,
        ).run(designs, workloads)
        tel.close()
        assert all(o.ok for o in result.outcomes), result.report()

        wanted = {"worker_died", "cell_requeued", "worker_respawned"}
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            if wanted <= {e.get("kind") for e in received}:
                break
            time.sleep(0.05)
        stop.set()
        server.stop()
        watcher.join(timeout=10.0)

        kinds = [e.get("kind") for e in received]
        assert wanted <= set(kinds), kinds
        assert kinds.count("worker_died") == 1, kinds
        assert kinds.count("cell_requeued") == 1, kinds
        identities = [
            (e.get("worker"), e.get("seq"))
            for e in received if e.get("seq") is not None
        ]
        assert len(identities) == len(set(identities)), (
            "duplicate (worker, seq) across SSE reconnect"
        )

    def test_pool_snapshot_feeds_readiness_through_the_lifecycle(
        self, trace_cache, workloads, tmp_path
    ):
        """``executor.pool_snapshot`` (the ``/readyz`` probe) reports
        ready with live heartbeats during a healthy campaign and idle
        (None) outside one."""
        from repro.telemetry.live import pool_readiness

        runner = make_runner(trace_cache)
        designs = make_designs(runner.reference)
        executor = SweepExecutor(
            runner, workers=2, pool_tuning=FAST_TUNING
        )
        assert executor.pool_snapshot() is None  # idle before
        snapshots: list[dict] = []
        stop = threading.Event()

        def probe() -> None:
            while not stop.is_set():
                snapshot = executor.pool_snapshot()
                if snapshot is not None:
                    snapshots.append(snapshot)
                time.sleep(0.002)

        prober = threading.Thread(target=probe, daemon=True)
        prober.start()
        result = executor.run(designs, workloads)
        stop.set()
        prober.join(timeout=10.0)

        assert all(o.ok for o in result.outcomes), result.report()
        assert executor.pool_snapshot() is None  # idle after
        assert pool_readiness(None)[0]
        assert snapshots, "probe never saw the pool"
        assert any(
            pool_readiness(s)[0]
            and sum(1 for w in s["workers"] if w["alive"]) == 2
            for s in snapshots
        ), "no snapshot showed a ready 2-worker pool"

    def test_exhausted_pool_flips_readiness(
        self, trace_cache, workloads, tmp_path
    ):
        """While every worker dies and the restart budget burns down,
        the readiness probe must observe a not-ready pool."""
        from repro.telemetry.live import pool_readiness

        runner = make_runner(trace_cache)
        designs = make_designs(runner.reference)
        faults = FaultInjector().worker_kill(1)
        executor = SweepExecutor(
            runner, workers=2, worker_faults=faults,
            max_worker_restarts=1, poison_threshold=2,
            pool_tuning=FAST_TUNING,
        )
        verdicts: list[tuple[bool, dict]] = []
        stop = threading.Event()

        def probe() -> None:
            while not stop.is_set():
                snapshot = executor.pool_snapshot()
                if snapshot is not None:
                    verdicts.append(pool_readiness(snapshot))
                time.sleep(0.001)

        prober = threading.Thread(target=probe, daemon=True)
        prober.start()
        result = executor.run(designs, workloads)
        stop.set()
        prober.join(timeout=10.0)

        assert {o.status for o in result.outcomes} <= {
            "failed", "poisoned"
        }
        assert verdicts, "probe never saw the pool"
        assert any(not ready for ready, _ in verdicts), (
            "readiness never flipped while the pool was dying"
        )


class TestFaultPicklability:
    def test_process_fault_rules_cross_the_process_boundary(self,
                                                            tmp_path):
        injector = (
            FaultInjector()
            .worker_kill(3, latch=tmp_path / "a")
            .worker_kill_cell("D", "W", latch=tmp_path / "b")
            .worker_hang("D", "W", 9.0, times=2)
            .fail_cell("D", "W", times=1)
            .delay_cell("D", "W", 0.1)
        )
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.calls == 0
        assert len(clone._rules) == len(injector._rules)

    def test_latch_fires_exactly_once(self, tmp_path):
        latch = tmp_path / "latch"
        assert acquire_latch(latch) is True
        assert acquire_latch(latch) is False
        assert acquire_latch(None) is True


class TestValidation:
    def test_worker_faults_require_workers(self, trace_cache):
        with pytest.raises(ConfigError):
            SweepExecutor(
                make_runner(trace_cache), worker_faults=FaultInjector()
            )

    def test_restart_budget_must_be_non_negative(self, trace_cache):
        with pytest.raises(ConfigError):
            SweepExecutor(make_runner(trace_cache), workers=2,
                          max_worker_restarts=-1)

    def test_poison_threshold_must_be_positive(self, trace_cache):
        with pytest.raises(ConfigError):
            SweepExecutor(make_runner(trace_cache), workers=2,
                          poison_threshold=0)

    def test_pool_rejects_bad_arguments(self):
        from repro.resilience.retry import NO_RETRY

        with pytest.raises(ConfigError):
            SupervisedPool(workers=0, runner_args={}, retry=NO_RETRY)
        with pytest.raises(ConfigError):
            SupervisedPool(workers=1, runner_args={}, retry=NO_RETRY,
                           max_worker_restarts=-1)
        with pytest.raises(ConfigError):
            SupervisedPool(workers=1, runner_args={}, retry=NO_RETRY,
                           poison_threshold=0)

    def test_empty_cell_list_is_a_no_op(self):
        from repro.resilience.retry import NO_RETRY

        pool = SupervisedPool(workers=2, runner_args={}, retry=NO_RETRY)
        stats, leftover = pool.run([])
        assert stats.spawned == 0
        assert leftover == []

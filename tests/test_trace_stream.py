"""AddressStream tests: chunking, stats, slicing."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.stream import AddressStream


class TestAppendAndChunks:
    def test_events_counted(self):
        stream = AddressStream()
        stream.append(np.arange(10, dtype=np.uint64), 8, 0)
        assert len(stream) == 10

    def test_chunk_boundary_splitting(self):
        stream = AddressStream(chunk_events=4)
        stream.append(np.arange(10, dtype=np.uint64), 8, 0)
        chunks = list(stream.chunks())
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_order_across_chunks(self):
        stream = AddressStream(chunk_events=3)
        stream.append(np.arange(8, dtype=np.uint64), 8, 0)
        merged = stream.as_batch()
        assert merged.addresses.tolist() == list(range(8))

    def test_append_empty_is_noop(self):
        stream = AddressStream()
        stream.append(np.empty(0, dtype=np.uint64), 8, 0)
        assert len(stream) == 0

    def test_scalar_broadcast(self):
        stream = AddressStream.from_arrays([0, 8, 16], 4, 1)
        batch = stream.as_batch()
        assert batch.sizes.tolist() == [4, 4, 4]
        assert batch.is_store.tolist() == [1, 1, 1]

    def test_per_event_sizes_and_kinds(self):
        stream = AddressStream.from_arrays([0, 8], [4, 8], [0, 1])
        batch = stream.as_batch()
        assert batch.sizes.tolist() == [4, 8]
        assert batch.is_store.tolist() == [0, 1]

    def test_mismatched_lengths_rejected(self):
        stream = AddressStream()
        with pytest.raises(TraceError):
            stream.append(np.arange(3, dtype=np.uint64), np.array([8, 8]), 0)
        with pytest.raises(TraceError):
            stream.append(np.arange(3, dtype=np.uint64), 8, np.array([0, 1]))

    def test_invalid_chunk_size(self):
        with pytest.raises(TraceError):
            AddressStream(chunk_events=0)

    def test_appendable_after_iteration(self):
        stream = AddressStream(chunk_events=4)
        stream.append(np.arange(3, dtype=np.uint64), 8, 0)
        assert len(list(stream.chunks())) == 1
        stream.append(np.arange(3, dtype=np.uint64), 8, 0)
        assert len(stream) == 6
        assert len(stream.as_batch()) == 6


class TestStats:
    def test_load_store_split(self):
        stream = AddressStream.from_arrays([0, 8, 16, 24], 8, [0, 1, 1, 0])
        stats = stream.stats()
        assert stats.loads == 2 and stats.stores == 2
        assert stats.bytes_read == 16 and stats.bytes_written == 16
        assert stats.store_fraction == 0.5

    def test_footprint_counts_distinct_lines(self):
        # Two accesses per 64B line over 4 lines.
        addrs = [0, 8, 64, 72, 128, 136, 192, 200]
        stats = AddressStream.from_arrays(addrs, 8, 0).stats()
        assert stats.footprint_bytes == 4 * 64

    def test_address_bounds(self):
        stats = AddressStream.from_arrays([100, 50, 200], 8, 0).stats()
        assert stats.min_address == 50
        assert stats.max_address == 200

    def test_empty_stream_stats(self):
        stats = AddressStream().stats()
        assert stats.events == 0
        assert stats.store_fraction == 0.0


class TestHeadAndConcat:
    def test_head_truncates(self):
        stream = AddressStream.from_arrays(range(100), 8, 0)
        head = stream.head(7)
        assert len(head) == 7
        assert head.as_batch().addresses.tolist() == list(range(7))

    def test_head_longer_than_stream(self):
        stream = AddressStream.from_arrays(range(5), 8, 0)
        assert len(stream.head(50)) == 5

    def test_head_negative_rejected(self):
        with pytest.raises(TraceError):
            AddressStream().head(-1)

    def test_concat(self):
        a = AddressStream.from_arrays([1, 2], 8, 0)
        b = AddressStream.from_arrays([3], 8, 1)
        joined = a.concat(b)
        assert len(joined) == 3
        assert joined.as_batch().is_store.tolist() == [0, 0, 1]

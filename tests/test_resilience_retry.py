"""RetryPolicy: bounded attempts, exponential backoff, seeded jitter."""

import pytest

from repro.errors import ConfigError
from repro.resilience import NO_RETRY, RetryPolicy, call_with_retries

pytestmark = pytest.mark.resilience


class TestPolicyValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_retries=-1)

    def test_bad_backoff_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5)

    def test_bad_jitter_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy(jitter_fraction=1.0)

    def test_max_attempts(self):
        assert RetryPolicy(max_retries=2).max_attempts == 3
        assert NO_RETRY.max_attempts == 1


class TestBackoff:
    def test_deterministic_per_key_and_attempt(self):
        policy = RetryPolicy(seed=7)
        assert policy.delay_s("cell-a", 1) == policy.delay_s("cell-a", 1)

    def test_jitter_varies_with_key_seed_attempt(self):
        policy = RetryPolicy(seed=7)
        units = {
            policy.jitter_unit("cell-a", 1),
            policy.jitter_unit("cell-b", 1),
            policy.jitter_unit("cell-a", 2),
            RetryPolicy(seed=8).jitter_unit("cell-a", 1),
        }
        assert len(units) == 4

    def test_exponential_growth(self):
        policy = RetryPolicy(
            backoff_base_s=1.0, backoff_factor=2.0, jitter_fraction=0.0
        )
        assert policy.delay_s("k", 1) == pytest.approx(1.0)
        assert policy.delay_s("k", 2) == pytest.approx(2.0)
        assert policy.delay_s("k", 3) == pytest.approx(4.0)

    def test_jitter_bounded(self):
        policy = RetryPolicy(
            backoff_base_s=1.0, backoff_factor=1.0, jitter_fraction=0.1
        )
        for attempt in range(1, 20):
            delay = policy.delay_s("k", attempt)
            assert 0.9 <= delay <= 1.1

    def test_attempt_numbering_from_one(self):
        with pytest.raises(ConfigError):
            RetryPolicy().delay_s("k", 0)


class TestCallWithRetries:
    def test_succeeds_after_transient_failures(self):
        attempts = []
        slept = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError(f"transient {len(attempts)}")
            return "done"

        value, used = call_with_retries(
            flaky,
            policy=RetryPolicy(max_retries=3, backoff_base_s=0.01),
            key="cell",
            sleep=slept.append,
        )
        assert value == "done"
        assert used == 3
        assert len(slept) == 2

    def test_exhaustion_reraises_last_error(self):
        def always():
            raise RuntimeError("permanent")

        with pytest.raises(RuntimeError, match="permanent"):
            call_with_retries(
                always,
                policy=RetryPolicy(max_retries=2),
                sleep=lambda s: None,
            )

    def test_no_retry_single_attempt(self):
        calls = []

        def failing():
            calls.append(1)
            raise ValueError("x")

        with pytest.raises(ValueError):
            call_with_retries(failing, policy=NO_RETRY, sleep=lambda s: None)
        assert len(calls) == 1

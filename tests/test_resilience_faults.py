"""Fault-injection harness: deterministic cell faults and corruption."""

import pytest

from repro.errors import ConfigError, ReproError
from repro.resilience import (
    CampaignKill,
    FaultInjector,
    InjectedFault,
    bitflip_file,
    truncate_file,
)

pytestmark = pytest.mark.resilience


class Obj:
    def __init__(self, name):
        self.name = name


def evaluate(design, workload):
    return f"{design.name}/{workload.name}"


class TestInjector:
    def test_counts_calls(self):
        injector = FaultInjector()
        wrapped = injector.wrap(evaluate)
        wrapped(Obj("D"), Obj("W"))
        wrapped(Obj("D"), Obj("W"))
        assert injector.calls == 2

    def test_fail_at_call_fires_once(self):
        injector = FaultInjector().fail_at_call(2)
        wrapped = injector.wrap(evaluate)
        assert wrapped(Obj("D"), Obj("W")) == "D/W"
        with pytest.raises(InjectedFault, match="call 2"):
            wrapped(Obj("D"), Obj("W"))
        assert wrapped(Obj("D"), Obj("W")) == "D/W"

    def test_fail_cell_limited_times(self):
        injector = FaultInjector().fail_cell("D", "W", times=2)
        wrapped = injector.wrap(evaluate)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                wrapped(Obj("D"), Obj("W"))
        assert wrapped(Obj("D"), Obj("W")) == "D/W"

    def test_fail_cell_only_matches_its_cell(self):
        injector = FaultInjector().fail_cell("D", "W")
        wrapped = injector.wrap(evaluate)
        assert wrapped(Obj("D2"), Obj("W")) == "D2/W"
        assert wrapped(Obj("D"), Obj("W2")) == "D/W2"
        with pytest.raises(InjectedFault):
            wrapped(Obj("D"), Obj("W"))

    def test_delay_cell_sleeps(self):
        slept = []
        injector = FaultInjector().delay_cell(
            "D", "W", seconds=2.5, sleep=slept.append
        )
        wrapped = injector.wrap(evaluate)
        assert wrapped(Obj("D"), Obj("W")) == "D/W"
        assert slept == [2.5]

    def test_kill_is_not_an_ordinary_exception(self):
        injector = FaultInjector().kill_at_call(1)
        wrapped = injector.wrap(evaluate)
        with pytest.raises(CampaignKill):
            wrapped(Obj("D"), Obj("W"))
        assert not issubclass(CampaignKill, Exception)

    def test_injected_fault_is_repro_error(self):
        assert issubclass(InjectedFault, ReproError)

    def test_bad_times_rejected(self):
        with pytest.raises(ConfigError):
            FaultInjector().fail_cell("D", "W", times=0)


class TestCorruptionHelpers:
    def test_truncate(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(bytes(range(100)))
        truncate_file(path, keep_fraction=0.5)
        assert path.read_bytes() == bytes(range(50))

    def test_truncate_validates_fraction(self, tmp_path):
        path = tmp_path / "f.bin"
        path.write_bytes(b"xy")
        with pytest.raises(ConfigError):
            truncate_file(path, keep_fraction=1.0)

    def test_bitflip_deterministic(self, tmp_path):
        a, b = tmp_path / "a.bin", tmp_path / "b.bin"
        payload = bytes(range(256))
        a.write_bytes(payload)
        b.write_bytes(payload)
        off_a = bitflip_file(a, seed=3)
        off_b = bitflip_file(b, seed=3)
        assert off_a == off_b
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes() != payload

    def test_bitflip_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ConfigError):
            bitflip_file(path)

"""Tracer tests: allocation, recording, pausing."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.tracer import HEAP_BASE, REGION_ALIGN, Tracer


class TestAllocation:
    def test_regions_are_page_aligned(self):
        tracer = Tracer()
        a = tracer.allocate("a", 100)
        b = tracer.allocate("b", 100)
        assert a.base % REGION_ALIGN == 0
        assert b.base % REGION_ALIGN == 0

    def test_regions_do_not_overlap_and_have_guard_gap(self):
        tracer = Tracer()
        a = tracer.allocate("a", 5000)
        b = tracer.allocate("b", 100)
        assert b.base >= a.end + 1  # at least the guard page separates them
        assert b.base - a.end >= REGION_ALIGN - (a.size % REGION_ALIGN)

    def test_first_region_at_heap_base(self):
        tracer = Tracer()
        assert tracer.allocate("a", 8).base == HEAP_BASE

    def test_zero_size_rejected(self):
        with pytest.raises(TraceError):
            Tracer().allocate("a", 0)

    def test_region_of(self):
        tracer = Tracer()
        a = tracer.allocate("a", 64)
        tracer.allocate("b", 64)
        assert tracer.region_of(a.base + 10) is a
        assert tracer.region_of(a.end) is None  # guard gap

    def test_region_by_name(self):
        tracer = Tracer()
        region = tracer.allocate("matrix", 64)
        assert tracer.region_by_name("matrix") is region
        with pytest.raises(KeyError):
            tracer.region_by_name("nope")

    def test_region_contains(self):
        tracer = Tracer()
        region = tracer.allocate("a", 64)
        assert region.contains(region.base)
        assert region.contains(region.end - 1)
        assert not region.contains(region.end)


class TestRecording:
    def test_loads_and_stores_recorded(self):
        tracer = Tracer()
        tracer.record_loads(np.array([1, 2], dtype=np.uint64), 8)
        tracer.record_stores(np.array([3], dtype=np.uint64), 8)
        stats = tracer.stream.stats()
        assert stats.loads == 2 and stats.stores == 1

    def test_pause_drops_events(self):
        tracer = Tracer()
        with tracer.pause():
            tracer.record_loads(np.array([1], dtype=np.uint64), 8)
        assert len(tracer.stream) == 0

    def test_pause_restores_state(self):
        tracer = Tracer()
        with tracer.pause():
            pass
        tracer.record_loads(np.array([1], dtype=np.uint64), 8)
        assert len(tracer.stream) == 1

    def test_nested_pause(self):
        tracer = Tracer()
        with tracer.pause():
            with tracer.pause():
                pass
            tracer.record_loads(np.array([1], dtype=np.uint64), 8)
        assert len(tracer.stream) == 0

    def test_disabled_flag(self):
        tracer = Tracer(enabled=False)
        tracer.record_loads(np.array([1], dtype=np.uint64), 8)
        assert len(tracer.stream) == 0

"""End-to-end model evaluation tests (evaluate_stats + finalize)."""

import pytest

from repro.cache.stats import HierarchyStats, LevelStats
from repro.errors import ModelError
from repro.model.bindings import LevelBinding
from repro.model.evaluate import (
    WorkloadMeta,
    evaluate_stats,
    finalize,
)


def stats(mem_loads=10, mem_stores=5, name="MEM"):
    l1 = LevelStats(
        name="L1", loads=80, stores=20, load_bits=80 * 64, store_bits=20 * 64,
        load_hits=70, store_hits=15, load_misses=10, store_misses=5,
    )
    mem = LevelStats(
        name=name, loads=mem_loads, stores=mem_stores,
        load_bits=mem_loads * 512, store_bits=mem_stores * 512,
        load_hits=mem_loads, store_hits=mem_stores,
    )
    return HierarchyStats(levels=[l1, mem], references=100)


def bindings(mem_read=10.0, mem_write=10.0, name="MEM", static=1.0):
    return {
        "L1": LevelBinding("L1", 1.0, 1.0, 0.1, 0.1, 0.05),
        name: LevelBinding(name, mem_read, mem_write, 10.0, 10.0, static),
    }


META = WorkloadMeta(name="W", footprint_bytes=1 << 30, t_ref_s=100.0)


class TestEvaluateStats:
    def test_raw_fields(self):
        raw = evaluate_stats("D", stats(), bindings())
        assert raw.design_name == "D"
        assert raw.amat_ns > 0
        assert raw.dynamic_pj_traced > 0
        assert raw.static_power_w == pytest.approx(1.05)


class TestFinalize:
    def test_reference_normalizes_to_one(self):
        ref = evaluate_stats("REF", stats(), bindings())
        ev = finalize(ref, ref, META)
        assert ev.time_norm == pytest.approx(1.0)
        assert ev.energy_norm == pytest.approx(1.0)
        assert ev.edp_norm == pytest.approx(1.0)
        assert ev.time_s == pytest.approx(META.t_ref_s)

    def test_slower_memory_increases_time(self):
        ref = evaluate_stats("REF", stats(), bindings())
        slow = evaluate_stats("SLOW", stats(), bindings(mem_read=100.0))
        ev = finalize(slow, ref, META)
        assert ev.time_norm > 1.0
        assert ev.time_s > META.t_ref_s

    def test_lower_static_power_reduces_energy(self):
        ref = evaluate_stats("REF", stats(), bindings(static=2.0))
        low = evaluate_stats("LOW", stats(), bindings(static=0.5))
        ev = finalize(low, ref, META)
        assert ev.static_norm < 1.0
        assert ev.energy_norm < 1.0

    def test_dynamic_energy_upscaled_consistently(self):
        """Traced dynamic energy scales by full-run/traced refs ratio."""
        ref = evaluate_stats("REF", stats(), bindings())
        ev = finalize(ref, ref, META)
        n_full = META.t_ref_s / (ref.amat_ns * 1e-9)
        upscale = n_full / 100
        assert ev.dynamic_j == pytest.approx(
            ref.dynamic_pj_traced * upscale * 1e-12
        )

    def test_energy_is_dynamic_plus_static(self):
        ref = evaluate_stats("REF", stats(), bindings())
        ev = finalize(ref, ref, META)
        assert ev.energy_j == pytest.approx(ev.dynamic_j + ev.static_j)

    def test_edp_consistency(self):
        ref = evaluate_stats("REF", stats(), bindings())
        ev = finalize(ref, ref, META)
        assert ev.edp_js == pytest.approx(ev.energy_j * ev.time_s)

    def test_mismatched_streams_rejected(self):
        ref = evaluate_stats("REF", stats(), bindings())
        other_stats = stats()
        other_stats.references = 200
        other = evaluate_stats("X", other_stats, bindings())
        with pytest.raises(ModelError):
            finalize(other, ref, META)

    def test_percent_helpers(self):
        ref = evaluate_stats("REF", stats(), bindings())
        slow = evaluate_stats("SLOW", stats(), bindings(mem_read=100.0))
        ev = finalize(slow, ref, META)
        assert ev.time_overhead_pct == pytest.approx((ev.time_norm - 1) * 100)
        assert ev.energy_saving_pct == pytest.approx((1 - ev.energy_norm) * 100)


class TestWorkloadMeta:
    def test_invalid_rejected(self):
        with pytest.raises(ModelError):
            WorkloadMeta(name="X", footprint_bytes=0, t_ref_s=1.0)
        with pytest.raises(ModelError):
            WorkloadMeta(name="X", footprint_bytes=1, t_ref_s=0.0)

"""Hierarchy chaining tests."""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.hierarchy import Hierarchy, to_block_requests
from repro.cache.mainmem import MainMemory
from repro.cache.partition import PartitionedMemory, RoutingRule
from repro.cache.setassoc import SetAssociativeCache
from repro.errors import ConfigError
from repro.trace.events import AccessBatch
from repro.trace.stream import AddressStream
from repro.units import KiB


def two_level():
    l1 = SetAssociativeCache(CacheConfig("L1", 1 * KiB, 2, 64))
    l2 = SetAssociativeCache(CacheConfig("L2", 4 * KiB, 4, 64))
    mem = MainMemory("MEM")
    return Hierarchy([l1, l2], mem), l1, l2, mem


class TestToBlockRequests:
    def test_caps_sizes(self):
        out = to_block_requests(AccessBatch.from_lists([0], [256], [0]), 64)
        assert max(out.sizes) <= 64

    def test_splits_spanning_access(self):
        out = to_block_requests(AccessBatch.from_lists([60], [8], [1]), 64)
        assert len(out) == 2
        assert (out.addresses >> np.uint64(6)).tolist() == [0, 1]
        assert out.is_store.tolist() == [1, 1]

    def test_fast_path_no_spans(self):
        raw = AccessBatch.from_lists([0, 8], [8, 8], [0, 1])
        out = to_block_requests(raw, 64)
        assert out.addresses.tolist() == [0, 8]


class TestHierarchy:
    def test_requires_a_cache(self):
        with pytest.raises(ConfigError):
            Hierarchy([], MainMemory())

    def test_block_size_must_not_shrink(self):
        big = SetAssociativeCache(CacheConfig("A", 4 * KiB, 4, 128))
        small = SetAssociativeCache(CacheConfig("B", 4 * KiB, 4, 64))
        with pytest.raises(ConfigError):
            Hierarchy([big, small], MainMemory())

    def test_filtering_down_the_chain(self):
        h, l1, l2, mem = two_level()
        stream = AddressStream.from_arrays(range(0, 8 * KiB, 8), 8, 0)
        stats = h.run(stream)
        # Every level sees fewer requests than the one above.
        assert stats.levels[0].accesses > stats.levels[1].accesses
        assert stats.levels[1].accesses >= stats.levels[2].accesses

    def test_references_counted(self):
        h, *_ = two_level()
        stream = AddressStream.from_arrays(range(0, 800, 8), 8, 0)
        stats = h.run(stream)
        assert stats.references == 100
        assert h.references == 100

    def test_l2_sees_l1_misses(self):
        h, l1, l2, mem = two_level()
        stream = AddressStream.from_arrays(range(0, 8 * KiB, 64), 8, 0)
        h.run(stream)
        assert l2.stats.loads == l1.stats.load_misses

    def test_memory_sees_l2_misses_plus_writebacks(self):
        h, l1, l2, mem = two_level()
        stream = AddressStream.from_arrays(
            list(range(0, 16 * KiB, 8)) * 2, 8, 1
        )
        h.run(stream)
        assert mem.stats.loads == l2.stats.fills
        assert mem.stats.stores == l2.stats.writebacks

    def test_drain_pushes_dirty_data_to_memory(self):
        h, l1, l2, mem = two_level()
        stream = AddressStream.from_arrays([0, 64, 128], 8, 1)
        h.run(stream, drain=True)
        assert mem.stats.stores == 3

    def test_drain_without_flag_keeps_dirty_in_cache(self):
        h, l1, l2, mem = two_level()
        h.run(AddressStream.from_arrays([0], 8, 1))
        assert mem.stats.stores == 0

    def test_reset(self):
        h, l1, l2, mem = two_level()
        h.run(AddressStream.from_arrays([0], 8, 0))
        h.reset()
        assert h.references == 0
        assert mem.stats.accesses == 0

    def test_stats_level_names(self):
        h, *_ = two_level()
        assert h.level_names == ["L1", "L2", "MEM"]

    def test_partitioned_memory_terminal(self):
        l1 = SetAssociativeCache(CacheConfig("L1", 1 * KiB, 2, 64))
        pm = PartitionedMemory(
            [MainMemory("D"), MainMemory("N")],
            [RoutingRule(0, 4096, 1)],
        )
        h = Hierarchy([l1], pm)
        stream = AddressStream.from_arrays([0, 8192], 8, 0)
        stats = h.run(stream)
        assert stats.level("N").loads == 1
        assert stats.level("D").loads == 1
        assert h.level_names == ["L1", "D", "N"]

    def test_page_cache_below_line_cache(self):
        l1 = SetAssociativeCache(CacheConfig("L1", 1 * KiB, 2, 64))
        l4 = SetAssociativeCache(
            CacheConfig("L4", 16 * KiB, 4, 1024, sector_size=64)
        )
        mem = MainMemory("MEM")
        h = Hierarchy([l1, l4], mem)
        stream = AddressStream.from_arrays(range(0, 4 * KiB, 8), 8, 0)
        h.run(stream)
        # L4 fills fetch whole pages from memory.
        assert mem.stats.load_bits == mem.stats.loads * 1024 * 8
        assert mem.stats.loads == 4  # 4 KiB / 1 KiB pages


class TestDrainSectored:
    def test_drain_writes_back_dirty_sectors_only(self):
        l1 = SetAssociativeCache(CacheConfig("L1", 1 * KiB, 2, 64))
        l4 = SetAssociativeCache(
            CacheConfig("L4", 16 * KiB, 4, 1024, sector_size=64)
        )
        mem = MainMemory("MEM")
        h = Hierarchy([l1, l4], mem)
        # Dirty exactly two 64 B lines.
        stream = AddressStream.from_arrays([0, 4096], 8, 1)
        h.run(stream, drain=True)
        assert mem.stats.stores == 2
        assert mem.stats.store_bits == 2 * 64 * 8

    def test_drain_idempotent(self):
        l1 = SetAssociativeCache(CacheConfig("L1", 1 * KiB, 2, 64))
        mem = MainMemory("MEM")
        h = Hierarchy([l1], mem)
        h.run(AddressStream.from_arrays([0], 8, 1))
        h.drain()
        stores = mem.stats.stores
        h.drain()
        assert mem.stats.stores == stores

    def test_drain_propagates_through_intermediate_levels(self):
        """L1's flushed dirty lines may hit (and dirty) L2 rather than
        reaching memory directly; a second-level drain moves them on."""
        l1 = SetAssociativeCache(CacheConfig("L1", 1 * KiB, 2, 64))
        l2 = SetAssociativeCache(CacheConfig("L2", 4 * KiB, 4, 64))
        mem = MainMemory("MEM")
        h = Hierarchy([l1, l2], mem)
        h.run(AddressStream.from_arrays([0, 64, 128], 8, 1), drain=True)
        # All three dirty lines must have reached memory by end of drain.
        assert mem.stats.stores == 3

"""Process-parallel sweep execution: equivalence, resume, isolation.

Workers are real processes, so the failing design used for fault
isolation is defined at module level (it must pickle by reference).
"""

import dataclasses

import pytest

from repro.designs.configs import EH_CONFIGS, N_CONFIGS
from repro.designs.fourlc import FourLCDesign
from repro.designs.fourlcnvm import FourLCNVMDesign
from repro.designs.nmm import NMMDesign
from repro.errors import ConfigError
from repro.experiments.runner import Runner
from repro.experiments.sweep import run_sweep
from repro.resilience import Journal, SweepExecutor
from repro.resilience.journal import cell_key
from repro.tech.params import EDRAM, PCM
from repro.workloads.registry import get_workload

pytestmark = pytest.mark.resilience

SCALE = 1.0 / 8192


class ExplodingDesign(NMMDesign):
    """Raises during simulation; used to prove worker fault isolation."""

    def sim_key(self):
        # Distinct from the healthy NMM design: a shared sim key would
        # let the exploding cells ride its cached statistics.
        return "BOOM"

    def lower_caches(self):
        raise RuntimeError("injected lower-cache failure")


@pytest.fixture(scope="module")
def trace_cache(tmp_path_factory):
    """Shared on-disk trace cache so every runner reuses one tracing."""
    return str(tmp_path_factory.mktemp("traces"))


@pytest.fixture(scope="module")
def workloads():
    return [get_workload("CG"), get_workload("SP")]


def make_runner(trace_cache):
    return Runner(scale=SCALE, seed=5, trace_cache_dir=trace_cache)


def make_designs(reference):
    return [
        NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE, reference=reference),
        FourLCDesign(EDRAM, EH_CONFIGS["EH4"], scale=SCALE,
                     reference=reference),
        FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH4"], scale=SCALE,
                        reference=reference),
    ]


class TestParallelEquivalence:
    def test_workers_two_equals_workers_one(self, trace_cache, workloads,
                                            tmp_path):
        seq_runner = make_runner(trace_cache)
        seq_journal = Journal(tmp_path / "seq.jsonl")
        seq = SweepExecutor(seq_runner, journal=seq_journal).run(
            make_designs(seq_runner.reference), workloads
        )

        par_runner = make_runner(trace_cache)
        par_journal = Journal(tmp_path / "par.jsonl")
        par = SweepExecutor(par_runner, journal=par_journal, workers=2).run(
            make_designs(par_runner.reference), workloads
        )

        assert [o.key for o in par.outcomes] == [o.key for o in seq.outcomes]
        assert all(o.ok for o in par.outcomes)
        for a, b in zip(seq.outcomes, par.outcomes):
            assert a.status == b.status
            assert dataclasses.asdict(a.evaluation) == dataclasses.asdict(
                b.evaluation
            )
        seq_entries = seq_journal.load()
        par_entries = par_journal.load()
        assert set(seq_entries) == set(par_entries)
        for key, entry in seq_entries.items():
            other = par_entries[key]
            assert (entry.status, entry.evaluation) == (
                other.status, other.evaluation
            )

    def test_run_sweep_workers_kwarg(self, trace_cache, workloads):
        seq_runner = make_runner(trace_cache)
        par_runner = make_runner(trace_cache)
        seq = run_sweep(seq_runner, make_designs(seq_runner.reference),
                        workloads)
        par = run_sweep(par_runner, make_designs(par_runner.reference),
                        workloads, workers=2)
        assert [(r.design, r.workload) for r in seq] == [
            (r.design, r.workload) for r in par
        ]
        for a, b in zip(seq, par):
            assert dataclasses.asdict(a.evaluation) == dataclasses.asdict(
                b.evaluation
            )


class TestParallelResume:
    def test_full_resume_skips_the_pool(self, trace_cache, workloads,
                                        tmp_path):
        journal = Journal(tmp_path / "resume.jsonl")
        runner = make_runner(trace_cache)
        designs = make_designs(runner.reference)
        first = SweepExecutor(runner, journal=journal, workers=2).run(
            designs, workloads
        )
        assert all(o.ok for o in first.outcomes)

        again = SweepExecutor(
            make_runner(trace_cache), journal=journal, workers=2
        ).run(designs, workloads)
        assert all(o.from_journal for o in again.outcomes)
        assert [o.key for o in again.outcomes] == [
            o.key for o in first.outcomes
        ]

    def test_partial_resume_runs_only_missing_cells(self, trace_cache,
                                                    workloads, tmp_path):
        journal = Journal(tmp_path / "partial.jsonl")
        runner = make_runner(trace_cache)
        designs = make_designs(runner.reference)
        # Seed the journal with one workload's worth of results.
        SweepExecutor(runner, journal=journal).run(designs, workloads[:1])

        resumed = SweepExecutor(
            make_runner(trace_cache), journal=journal, workers=2
        ).run(designs, workloads)
        by_workload = {}
        for outcome in resumed.outcomes:
            by_workload.setdefault(outcome.workload, []).append(outcome)
        assert all(o.from_journal for o in by_workload[workloads[0].name])
        assert not any(o.from_journal for o in by_workload[workloads[1].name])
        assert all(o.ok for o in resumed.outcomes)


class TestParallelFaultIsolation:
    def test_bad_cell_does_not_sink_the_shard(self, trace_cache, workloads):
        runner = make_runner(trace_cache)
        boom = ExplodingDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                               reference=runner.reference)
        boom.name = "BOOM"
        designs = make_designs(runner.reference) + [boom]
        result = SweepExecutor(runner, workers=2).run(designs, workloads)
        bad = [o for o in result.outcomes if o.design == "BOOM"]
        good = [o for o in result.outcomes if o.design != "BOOM"]
        assert bad and all(o.status == "failed" for o in bad)
        assert all("injected lower-cache failure" in o.error for o in bad)
        assert good and all(o.ok for o in good)


class TestValidation:
    def test_evaluate_override_rejected_with_workers(self, trace_cache):
        with pytest.raises(ConfigError):
            SweepExecutor(
                make_runner(trace_cache), workers=2,
                evaluate=lambda d, w: None,
            )

    def test_workers_must_be_positive(self, trace_cache):
        with pytest.raises(ConfigError):
            SweepExecutor(make_runner(trace_cache), workers=0)


class TestDrainKeying:
    def test_drain_enters_the_key_only_when_true(self):
        base = cell_key("D", "S", "W", 0.5, 7)
        assert cell_key("D", "S", "W", 0.5, 7, drain=False) == base
        assert cell_key("D", "S", "W", 0.5, 7, drain=True) != base

"""Cross-validation of workload kernels against scipy / networkx.

The workload suite's value rests on the kernels being *real*
implementations; these tests check them against independent reference
libraries rather than against their own invariants:

- CG's CSR matrix and matvec against ``scipy.sparse``;
- CG's solution against ``scipy.sparse.linalg.cg``;
- AMG's Galerkin coarse operator against an explicit P^T A P;
- Graph500's BFS levels against ``networkx`` shortest path lengths;
- BT/SP line solves against ``numpy.linalg`` dense solves.
"""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.trace.tracer import Tracer
from repro.workloads.amg import _galerkin_coarse, _stencil_csr
from repro.workloads.cg import CGWorkload, _build_spd_csr
from repro.workloads.graph500 import Graph500Workload, edges_to_csr, rmat_edges

S = 1.0 / 16384


class TestCGAgainstScipy:
    def test_matrix_is_spd(self):
        rowptr, colidx, values = _build_spd_csr(200, np.random.default_rng(0))
        matrix = sp.csr_matrix(
            (values, colidx, rowptr), shape=(200, 200)
        ).toarray()
        # Symmetric part dominates; eigenvalues of (A+A^T)/2 positive.
        sym = (matrix + matrix.T) / 2
        eigenvalues = np.linalg.eigvalsh(sym)
        assert eigenvalues.min() > 0

    def test_traced_matvec_matches_scipy(self):
        workload = CGWorkload(iterations=1)
        rng = np.random.default_rng(5)
        n = 300
        rowptr_np, colidx_np, values_np = _build_spd_csr(n, rng)
        tracer = Tracer()
        with tracer.pause():
            rowptr = tracer.array("rp", rowptr_np.shape, dtype=np.int64)
            rowptr.data[:] = rowptr_np
            colidx = tracer.array("ci", colidx_np.shape, dtype=np.int32)
            colidx.data[:] = colidx_np
            values = tracer.array("va", values_np.shape)
            values.data[:] = values_np
            x = tracer.array("x", (n,))
            x.data[:] = rng.uniform(-1, 1, n)
            y = tracer.array("y", (n,))
        workload._matvec(rowptr, colidx, values, x, y, n)
        reference = sp.csr_matrix(
            (values_np, colidx_np, rowptr_np), shape=(n, n)
        ) @ x.data
        np.testing.assert_allclose(y.data, reference, rtol=1e-12)

    def test_cg_residual_tracks_scipy_cg(self):
        """Our 2-iteration CG must reduce the residual at least as much
        as scipy's CG limited to the same iterations (same algorithm,
        same matrix => same order of magnitude)."""
        workload = CGWorkload(iterations=2)
        result = workload.trace(scale=S, seed=9)
        n = result.checks["n"]
        rng = np.random.default_rng(9)
        rowptr, colidx, values = _build_spd_csr(n, rng)
        b = rng.uniform(0.0, 1.0, size=n)
        matrix = sp.csr_matrix((values, colidx, rowptr), shape=(n, n))
        x_sp, _ = spla.cg(matrix, b, maxiter=2, rtol=0.0, atol=0.0)
        scipy_res = np.linalg.norm(b - matrix @ x_sp)
        ours = result.checks["residuals"][-1]
        assert ours == pytest.approx(scipy_res, rel=0.3)


class TestAMGGalerkinAgainstExplicit:
    def test_coarse_operator_is_ptap(self):
        n = 160
        rng = np.random.default_rng(2)
        rowptr, colidx, values = _stencil_csr(n, rng)
        aggregate_of = np.arange(n) // 4
        n_coarse = (n + 3) // 4
        c_rowptr, c_colidx, c_values = _galerkin_coarse(
            rowptr, colidx, values, n, aggregate_of, n_coarse
        )
        fine = sp.csr_matrix((values, colidx, rowptr), shape=(n, n))
        # Piecewise-constant prolongation.
        prolong = sp.csr_matrix(
            (np.ones(n), (np.arange(n), aggregate_of)),
            shape=(n, n_coarse),
        )
        explicit = (prolong.T @ fine @ prolong).toarray()
        ours = sp.csr_matrix(
            (c_values, c_colidx, c_rowptr), shape=(n_coarse, n_coarse)
        ).toarray()
        np.testing.assert_allclose(ours, explicit, rtol=1e-12, atol=1e-12)


class TestGraph500AgainstNetworkx:
    def test_bfs_levels_match_shortest_paths(self):
        rng = np.random.default_rng(4)
        edges = rmat_edges(9, 4, rng)
        n = 1 << 9
        xoff, xadj = edges_to_csr(edges, n)

        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(
            (int(u), int(v)) for u, v in edges if u != v
        )
        # Run the traced BFS.
        workload = Graph500Workload()
        tracer = Tracer()
        with tracer.pause():
            xoff_t = tracer.array("xoff", xoff.shape, dtype=np.int64)
            xoff_t.data[:] = xoff
            xadj_t = tracer.array("xadj", xadj.shape, dtype=np.int64)
            xadj_t.data[:] = xadj
            parent = tracer.array("parent", (n,), dtype=np.int64)
            parent.data[:] = -1
            frontier = tracer.array("frontier", (n,), dtype=np.int64)
            degrees = np.diff(xoff)
            root = int(np.flatnonzero(degrees > 0)[0])
        workload._bfs(xoff_t, xadj_t, parent, frontier, root)

        lengths = nx.single_source_shortest_path_length(graph, root)
        reached_ours = set(np.flatnonzero(parent.data >= 0).tolist())
        assert reached_ours == set(lengths)
        # Parent pointers respect BFS level structure: depth(parent) ==
        # depth(v) - 1 under the networkx distances.
        for v in list(reached_ours)[:200]:
            if v == root:
                continue
            p = int(parent.data[v])
            assert lengths[p] == lengths[v] - 1, (v, p)


class TestLineSolvesAgainstDense:
    def test_bt_thomas_matches_dense_solve(self):
        from repro.workloads.bt import BLOCK, BTWorkload

        workload = BTWorkload(sweeps=(0,))
        result = workload.trace(scale=S, seed=3)
        # The workload already verifies per-line residuals; assert the
        # bound is at dense-solve accuracy, not merely "small".
        assert result.checks["max_residual"] < 1e-10

    def test_sp_penta_matches_banded_solve(self):
        from repro.workloads.sp import SPWorkload

        workload = SPWorkload(sweeps=(0,))
        result = workload.trace(scale=S, seed=3)
        assert result.checks["max_residual"] < 1e-10

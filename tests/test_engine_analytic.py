"""Analytic fast-path engine: differential suite against exact replay.

The analytic engine's contract, pinned here per design family on real
traced workloads:

- REF and NDM (no lower caches) are *simulated* — stats bit-identical
  to the exact engines.
- Designs whose lower chain is entirely fully-associative (one set) at
  the test scale come out bit-identical too: the profile indicator
  sums are exact integers, so rounding changes nothing.
- Set-associative lower levels go through the binomial conflict model;
  their per-level hit-rate error must stay inside the documented
  envelope (see docs/performance.md).
- ``--screen-analytic`` keeps the exact engine's winning design.
- Analytic results are approximations, so they may never satisfy an
  exact campaign's journal on resume (or vice versa).
"""

from __future__ import annotations

import pytest

from repro.designs.configs import EH_CONFIGS, N_CONFIGS
from repro.designs.deephybrid import DeepHybridDesign
from repro.designs.fourlc import FourLCDesign
from repro.designs.fourlcnvm import FourLCNVMDesign
from repro.designs.ndm import NDMDesign
from repro.designs.nmm import NMMDesign
from repro.designs.reference import ReferenceDesign
from repro.experiments.runner import Runner
from repro.partition.ranges import AddressRange
from repro.resilience import Journal, SweepExecutor
from repro.resilience.journal import JournalEntry, cell_key
from repro.tech.params import EDRAM, PCM
from repro.workloads.registry import get_workload

SCALE = 1.0 / 8192

#: Documented worst-case absolute hit-rate error of the binomial
#: conflict model at this extreme downscale (16-set sectored DRAM$,
#: measured 0.095 standalone and 0.122 chained behind a same-page L4,
#: where the nesting approximation compounds) — see
#: docs/performance.md.
SET_ASSOC_HIT_RATE_BOUND = 0.15


def all_designs(reference, engine):
    return [
        ReferenceDesign(scale=SCALE, reference=reference, engine=engine),
        NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE, reference=reference,
                  engine=engine),
        FourLCDesign(EDRAM, EH_CONFIGS["EH4"], scale=SCALE,
                     reference=reference, engine=engine),
        FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH4"], scale=SCALE,
                        reference=reference, engine=engine),
        DeepHybridDesign(EDRAM, PCM, EH_CONFIGS["EH1"], N_CONFIGS["N6"],
                         scale=SCALE, reference=reference, engine=engine),
        # EH4 and N6 share a 512 B page: both lower levels read the
        # *same* profile, covering the engine's class-decomposed
        # multi-level chain (the mixed-granularity EH1+N6 pair above
        # covers the per-access gather path).
        DeepHybridDesign(EDRAM, PCM, EH_CONFIGS["EH4"], N_CONFIGS["N6"],
                         scale=SCALE, reference=reference, engine=engine),
        NDMDesign(PCM, [AddressRange(0x1000_0000, 0x2000_0000, "hot")],
                  scale=SCALE, reference=reference, engine=engine),
    ]


@pytest.fixture(scope="module")
def trace_cache(tmp_path_factory):
    return str(tmp_path_factory.mktemp("traces"))


@pytest.fixture(scope="module")
def workloads():
    return [get_workload("CG"), get_workload("SP")]


def make_runner(trace_cache, engine, drain=False):
    return Runner(scale=SCALE, seed=5, trace_cache_dir=trace_cache,
                  drain=drain, engine=engine)


class TestAnalyticDifferential:
    @pytest.mark.parametrize("drain", [False, True])
    def test_every_family_within_error_envelope(self, trace_cache,
                                                workloads, drain):
        exact = make_runner(trace_cache, "auto", drain=drain)
        analytic = make_runner(trace_cache, "analytic", drain=drain)
        for workload in workloads:
            for d_ex, d_an in zip(
                all_designs(exact.reference, "auto"),
                all_designs(analytic.reference, "auto"),
            ):
                se = exact.stats_for(d_ex, workload)
                sa = analytic.stats_for(d_an, workload)
                assert sa.references == se.references
                assert sa.level_names == se.level_names
                lower = d_ex.lower_caches()
                if not lower or all(
                    c.config.num_sets == 1 for c in lower
                ):
                    # Simulated outright (REF/NDM) or indicator-exact
                    # (fully-associative chain): bit-identical.
                    assert sa.as_dict() == se.as_dict(), d_ex.name
                    continue
                # Upper levels replay the same exact trace.
                n_upper = len(se.levels) - len(lower) - 1
                for le, la in zip(se.levels[:n_upper], sa.levels[:n_upper]):
                    assert la.as_dict() == le.as_dict()
                # Arrival counts at the first lower level are exact.
                first = sa.levels[n_upper]
                assert first.loads == se.levels[n_upper].loads
                assert first.stores == se.levels[n_upper].stores
                # Conflict-modelled levels stay inside the envelope.
                for le, la in zip(se.levels[n_upper:], sa.levels[n_upper:]):
                    if le.accesses or la.accesses:
                        assert abs(
                            le.hit_rate - la.hit_rate
                        ) <= SET_ASSOC_HIT_RATE_BOUND, (d_ex.name, le.name)

    def test_evaluations_flow_through_model(self, trace_cache, workloads):
        """Analytic stats evaluate through the AMAT/energy/EDP model
        unchanged; fully-associative designs reproduce the exact
        engine's EDP to the last bit."""
        exact = make_runner(trace_cache, "auto")
        analytic = make_runner(trace_cache, "analytic")
        workload = workloads[0]
        for d_ex, d_an in zip(
            all_designs(exact.reference, "auto"),
            all_designs(analytic.reference, "auto"),
        ):
            ev_ex = exact.evaluate(d_ex, workload)
            ev_an = analytic.evaluate(d_an, workload)
            assert ev_an.edp_norm > 0
            lower = d_ex.lower_caches()
            if not lower or all(c.config.num_sets == 1 for c in lower):
                assert ev_an.edp_norm == ev_ex.edp_norm, d_ex.name

    def test_winner_matches_exact_engine(self, trace_cache, workloads):
        """The analytic screen's purpose: per workload, the design the
        analytic engine ranks first is the exact engine's winner."""
        exact = make_runner(trace_cache, "auto")
        analytic = make_runner(trace_cache, "analytic")
        for workload in workloads:
            best = {}
            for engine, runner in (("exact", exact), ("analytic", analytic)):
                evs = {
                    d.name: runner.evaluate(d, workload).edp_norm
                    for d in all_designs(runner.reference, "auto")
                }
                best[engine] = min(evs, key=evs.get)
            assert best["analytic"] == best["exact"], workload.name

    def test_profile_cache_reused_across_runners(self, trace_cache,
                                                 workloads, capsys):
        """Profiles persist next to the trace cache and are reloaded,
        not recomputed, by a fresh runner."""
        import pathlib

        first = make_runner(trace_cache, "analytic")
        design = all_designs(first.reference, "auto")[2]
        first.stats_for(design, workloads[0])
        sidecars = list(pathlib.Path(trace_cache).glob("*.profile-*.npz"))
        assert sidecars, "profile cache files missing"
        stamps = {p: p.stat().st_mtime_ns for p in sidecars}

        second = make_runner(trace_cache, "analytic")
        design2 = all_designs(second.reference, "auto")[2]
        second.stats_for(design2, workloads[0])
        for p, stamp in stamps.items():
            assert p.stat().st_mtime_ns == stamp  # untouched, reloaded


class TestScreenAnalyticCLI:
    def test_two_phase_sweep_keeps_exact_winner(self, trace_cache,
                                                tmp_path, capsys):
        from repro.experiments.cli import main

        journal = tmp_path / "screen.jsonl"
        code = main([
            "--scale", str(SCALE), "--seed", "5", "--workloads", "CG",
            "--trace-cache", trace_cache,
            "sweep", "--screen-analytic", "2",
            "--journal", str(journal),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "analytic screen" in out
        # Phase 1 journals separately from phase 2.
        assert journal.exists()
        assert journal.with_name(journal.name + ".analytic").exists()

        # The exact winner among the same default designs survives the
        # screen and wins phase 2.
        runner = make_runner(trace_cache, "auto")
        from repro.experiments.cli import (
            DEFAULT_SWEEP_DESIGNS,
            _parse_designs,
        )
        designs = _parse_designs(
            DEFAULT_SWEEP_DESIGNS, SCALE, runner.reference
        )
        workload = get_workload("CG")
        evs = {
            d.name: runner.evaluate(d, workload).edp_norm for d in designs
        }
        winner = min(evs, key=evs.get)
        kept_line = [
            line for line in out.splitlines()
            if line.startswith("analytic screen kept")
        ][0]
        assert winner in kept_line

    def test_screen_rejects_analytic_engine_combo(self, tmp_path):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit, match="screen-analytic"):
            main([
                "--scale", str(SCALE), "--workloads", "CG",
                "--engine", "analytic",
                "sweep", "--screen-analytic", "2",
            ])

    def test_screen_rejects_nonpositive_k(self, tmp_path):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main([
                "--scale", str(SCALE), "--workloads", "CG",
                "sweep", "--screen-analytic", "0",
            ])


@pytest.mark.resilience
class TestEngineClassJournalSeparation:
    def test_cell_key_separates_engine_classes(self):
        exact = cell_key("D", "K", "CG", SCALE, 5)
        analytic = cell_key("D", "K", "CG", SCALE, 5,
                            engine_class="analytic")
        assert exact != analytic
        # Explicit "exact" matches the default (old journals resume).
        assert exact == cell_key("D", "K", "CG", SCALE, 5,
                                 engine_class="exact")

    def test_journal_entry_round_trip_and_compat(self):
        entry = JournalEntry(
            key="k", design="D", workload="CG", scale=SCALE, seed=5,
            status="ok", attempts=1, duration_s=0.1,
            engine_class="analytic",
        )
        line = entry.to_json()
        assert '"engine_class": "analytic"' in line
        assert JournalEntry.from_json(line).engine_class == "analytic"
        # Exact entries serialize without the field — byte-stable with
        # journals written before the analytic engine existed.
        exact_line = JournalEntry(
            key="k", design="D", workload="CG", scale=SCALE, seed=5,
            status="ok", attempts=1, duration_s=0.1,
        ).to_json()
        assert "engine_class" not in exact_line
        assert JournalEntry.from_json(exact_line).engine_class == "exact"

    def test_resume_never_mixes_engine_classes(self, trace_cache,
                                               workloads, tmp_path):
        """A journal written by an analytic campaign must not satisfy
        an exact campaign on resume, nor the reverse."""
        designs_for = lambda runner: [
            NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                      reference=runner.reference),
        ]
        journal = Journal(tmp_path / "mixed.jsonl")
        wl = [workloads[0]]

        analytic_runner = make_runner(trace_cache, "analytic")
        first = SweepExecutor(analytic_runner, journal=journal).run(
            designs_for(analytic_runner), wl
        )
        assert all(o.ok and not o.from_journal for o in first.outcomes)
        assert all(
            e.engine_class == "analytic" for e in journal.entries()
        )

        exact_runner = make_runner(trace_cache, "auto")
        second = SweepExecutor(exact_runner, journal=journal).run(
            designs_for(exact_runner), wl
        )
        assert all(not o.from_journal for o in second.outcomes)

        # Each class resumes from its own entries.
        third = SweepExecutor(exact_runner, journal=journal).run(
            designs_for(exact_runner), wl
        )
        assert all(o.from_journal for o in third.outcomes)
        again = SweepExecutor(
            make_runner(trace_cache, "analytic"), journal=journal
        ).run(designs_for(analytic_runner), wl)
        assert all(o.from_journal for o in again.outcomes)

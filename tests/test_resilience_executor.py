"""Sweep executor: fault isolation, retries, deadlines, resume.

Most tests drive the executor with a fake runner so the resilience
machinery is exercised in milliseconds; one integration test runs a
real (tiny-scale) campaign through a mid-campaign kill and resume.
"""

import pytest

from repro.errors import ConfigError
from repro.model.evaluate import Evaluation
from repro.resilience import (
    CampaignKill,
    FaultInjector,
    InjectedFault,
    Journal,
    RetryPolicy,
    SweepExecutor,
    cell_key_for,
)

pytestmark = pytest.mark.resilience


def make_evaluation(design, workload):
    return Evaluation(
        design_name=design, workload=workload, time_s=1.0, dynamic_j=2.0,
        static_j=3.0, energy_j=5.0, edp_js=5.0, amat_ns=1.5, time_norm=1.0,
        energy_norm=0.5, dynamic_norm=0.4, static_norm=0.6, edp_norm=0.5,
    )


class FakeDesign:
    def __init__(self, name):
        self.name = name

    def sim_key(self):
        return self.name


class FakeWorkload:
    def __init__(self, name):
        self.name = name


class FakeRunner:
    """Duck-typed stand-in: scale, seed, and an evaluate counter."""

    def __init__(self):
        self.scale = 0.001
        self.seed = 0
        self.calls = 0

    def evaluate(self, design, workload):
        self.calls += 1
        return make_evaluation(design.name, workload.name)


DESIGNS = [FakeDesign("D1"), FakeDesign("D2")]
WORKLOADS = [FakeWorkload("W1"), FakeWorkload("W2")]


class TestValidation:
    def test_empty_workloads_rejected(self):
        with pytest.raises(ConfigError):
            SweepExecutor(FakeRunner()).run(DESIGNS, [])

    def test_empty_designs_rejected_before_work(self):
        runner = FakeRunner()
        with pytest.raises(ConfigError):
            SweepExecutor(runner).run(iter([]), WORKLOADS)
        assert runner.calls == 0

    def test_bad_timeout_rejected(self):
        with pytest.raises(ConfigError):
            SweepExecutor(FakeRunner(), cell_timeout_s=0.0)


class TestFaultIsolation:
    def test_clean_campaign(self):
        result = SweepExecutor(FakeRunner()).run(DESIGNS, WORKLOADS)
        assert [o.status for o in result.outcomes] == ["ok"] * 4
        assert len(result.evaluations) == 4

    def test_always_failing_cell_does_not_sink_campaign(self):
        runner = FakeRunner()
        injector = FaultInjector().fail_cell("D1", "W2")
        executor = SweepExecutor(
            runner, evaluate=injector.wrap(runner.evaluate)
        )
        result = executor.run(DESIGNS, WORKLOADS)
        by_cell = {(o.design, o.workload): o for o in result.outcomes}
        assert by_cell[("D1", "W2")].status == "failed"
        # Every other cell still completed.
        ok = [o for o in result.outcomes if o.ok]
        assert len(ok) == 3
        assert result.counts() == {"ok": 3, "failed": 1}

    def test_failure_records_exception_chain(self):
        runner = FakeRunner()

        def chained_exc():
            exc = InjectedFault("wrapper")
            exc.__cause__ = ValueError("root cause")
            return exc

        injector = FaultInjector().fail_cell(
            "D1", "W1", exc_factory=chained_exc
        )
        executor = SweepExecutor(
            runner, evaluate=injector.wrap(runner.evaluate)
        )
        result = executor.run(DESIGNS, WORKLOADS)
        failed = next(o for o in result.outcomes if not o.ok)
        assert "InjectedFault: wrapper" in failed.error
        assert "caused by ValueError: root cause" in failed.error
        assert isinstance(failed.exception, InjectedFault)

    def test_keep_going_off_skips_remaining(self):
        runner = FakeRunner()
        injector = FaultInjector().fail_at_call(2)
        executor = SweepExecutor(
            runner, evaluate=injector.wrap(runner.evaluate), keep_going=False
        )
        result = executor.run(DESIGNS, WORKLOADS)
        assert [o.status for o in result.outcomes] == [
            "ok", "failed", "skipped", "skipped"
        ]
        assert injector.calls == 2  # skipped cells never evaluated


class TestRetries:
    def test_transient_failure_retried_to_success(self):
        runner = FakeRunner()
        injector = FaultInjector().fail_cell("D1", "W1", times=2)
        executor = SweepExecutor(
            runner,
            evaluate=injector.wrap(runner.evaluate),
            retry=RetryPolicy(max_retries=2, backoff_base_s=0.0),
            sleep=lambda s: None,
        )
        result = executor.run(DESIGNS, WORKLOADS)
        flaky = result.outcomes[0]
        assert flaky.status == "ok"
        assert flaky.attempts == 3
        assert result.retried == [flaky]

    def test_retries_exhausted_reports_failure(self):
        runner = FakeRunner()
        injector = FaultInjector().fail_cell("D1", "W1")
        slept = []
        executor = SweepExecutor(
            runner,
            evaluate=injector.wrap(runner.evaluate),
            retry=RetryPolicy(max_retries=2, backoff_base_s=0.01, seed=3),
            sleep=slept.append,
        )
        result = executor.run(DESIGNS, WORKLOADS)
        failed = result.outcomes[0]
        assert failed.status == "failed"
        assert failed.attempts == 3
        assert len(slept) == 2
        # Backoff delays are the policy's deterministic schedule.
        key = failed.key
        policy = executor.retry
        assert slept == [policy.delay_s(key, 1), policy.delay_s(key, 2)]


class TestDeadlines:
    def test_slow_cell_times_out(self):
        runner = FakeRunner()
        injector = FaultInjector().delay_cell("D1", "W1", seconds=5.0)
        executor = SweepExecutor(
            runner,
            evaluate=injector.wrap(runner.evaluate),
            cell_timeout_s=0.1,
        )
        result = executor.run(DESIGNS, WORKLOADS)
        assert result.outcomes[0].status == "timed_out"
        assert "deadline" in result.outcomes[0].error
        # The campaign still finished the rest of the grid.
        assert sum(1 for o in result.outcomes if o.ok) == 3

    def test_fast_cells_unaffected_by_deadline(self):
        result = SweepExecutor(FakeRunner(), cell_timeout_s=30.0).run(
            DESIGNS, WORKLOADS
        )
        assert all(o.ok for o in result.outcomes)


class TestJournalResume:
    def test_kill_mid_campaign_then_resume(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        runner = FakeRunner()
        injector = FaultInjector().kill_at_call(3)
        executor = SweepExecutor(
            runner, evaluate=injector.wrap(runner.evaluate), journal=path
        )
        with pytest.raises(CampaignKill):
            executor.run(DESIGNS, WORKLOADS)
        # The first two cells were journalled durably before the kill.
        assert len(Journal(path).load()) == 2

        resumed_runner = FakeRunner()
        result = SweepExecutor(resumed_runner, journal=path).run(
            DESIGNS, WORKLOADS
        )
        assert all(o.ok for o in result.outcomes)
        # Only the incomplete cells were re-evaluated.
        assert resumed_runner.calls == 2
        reused = [o for o in result.outcomes if o.from_journal]
        assert [(o.design, o.workload) for o in reused] == [
            ("D1", "W1"), ("D1", "W2")
        ]

    def test_resumed_evaluation_identical(self, tmp_path):
        path = tmp_path / "j.jsonl"
        runner = FakeRunner()
        first = SweepExecutor(runner, journal=path).run(DESIGNS, WORKLOADS)
        second = SweepExecutor(FakeRunner(), journal=path).run(
            DESIGNS, WORKLOADS
        )
        assert all(o.from_journal for o in second.outcomes)
        assert [o.evaluation for o in first.outcomes] == [
            o.evaluation for o in second.outcomes
        ]

    def test_failed_cells_rerun_on_resume(self, tmp_path):
        path = tmp_path / "j.jsonl"
        runner = FakeRunner()
        injector = FaultInjector().fail_cell("D2", "W1", times=1)
        SweepExecutor(
            runner, evaluate=injector.wrap(runner.evaluate), journal=path
        ).run(DESIGNS, WORKLOADS)
        resumed_runner = FakeRunner()
        result = SweepExecutor(resumed_runner, journal=path).run(
            DESIGNS, WORKLOADS
        )
        assert all(o.ok for o in result.outcomes)
        assert resumed_runner.calls == 1  # only the failed cell re-ran

    def test_resume_off_reevaluates_everything(self, tmp_path):
        path = tmp_path / "j.jsonl"
        SweepExecutor(FakeRunner(), journal=path).run(DESIGNS, WORKLOADS)
        runner = FakeRunner()
        SweepExecutor(runner, journal=path, resume=False).run(
            DESIGNS, WORKLOADS
        )
        assert runner.calls == 4

    def test_changed_scale_changes_keys(self, tmp_path):
        path = tmp_path / "j.jsonl"
        SweepExecutor(FakeRunner(), journal=path).run(DESIGNS, WORKLOADS)
        changed = FakeRunner()
        changed.scale = 0.5  # different design point: nothing reusable
        SweepExecutor(changed, journal=path).run(DESIGNS, WORKLOADS)
        assert changed.calls == 4


class TestDegradationReport:
    def test_report_names_failures_and_reproduction_handle(self):
        runner = FakeRunner()
        injector = FaultInjector().fail_cell("D2", "W2")
        executor = SweepExecutor(
            runner,
            evaluate=injector.wrap(runner.evaluate),
            retry=RetryPolicy(max_retries=1, backoff_base_s=0.0, seed=11),
            sleep=lambda s: None,
        )
        result = executor.run(DESIGNS, WORKLOADS)
        report = result.report()
        key = cell_key_for(
            DESIGNS[1], WORKLOADS[1], runner.scale, runner.seed
        )
        assert "3 ok" in report
        assert "1 failed" in report
        assert "D2/W2" in report
        assert f"seed=11 key={key}" in report
        assert "InjectedFault" in report

    def test_clean_report(self):
        result = SweepExecutor(FakeRunner()).run(DESIGNS, WORKLOADS)
        assert "no cells abandoned" in result.report()
        assert "4 ok" in result.report()


class TestRealRunnerIntegration:
    """End-to-end: a real tiny campaign killed and resumed."""

    SCALE = 1.0 / 8192

    def test_kill_and_resume_real_sweep(self, tmp_path):
        from repro.designs.configs import N_CONFIGS
        from repro.designs.nmm import NMMDesign
        from repro.designs.reference import ReferenceDesign
        from repro.experiments.runner import Runner
        from repro.tech.params import PCM, STTRAM
        from repro.workloads.registry import get_workload

        path = tmp_path / "campaign.jsonl"
        workloads = [get_workload("CG")]

        def designs_for(runner):
            return [
                ReferenceDesign(scale=self.SCALE, reference=runner.reference),
                NMMDesign(PCM, N_CONFIGS["N6"], scale=self.SCALE,
                          reference=runner.reference),
                NMMDesign(STTRAM, N_CONFIGS["N6"], scale=self.SCALE,
                          reference=runner.reference),
            ]

        runner = Runner(scale=self.SCALE, seed=2)
        injector = FaultInjector().kill_at_call(2)
        with pytest.raises(CampaignKill):
            SweepExecutor(
                runner, evaluate=injector.wrap(runner.evaluate), journal=path
            ).run(designs_for(runner), workloads)
        assert len(Journal(path).load()) == 1

        resumed = Runner(scale=self.SCALE, seed=2)
        resumed_injector = FaultInjector()  # counts evaluations only
        result = SweepExecutor(
            resumed,
            evaluate=resumed_injector.wrap(resumed.evaluate),
            journal=path,
        ).run(designs_for(resumed), workloads)
        assert all(o.ok for o in result.outcomes)
        assert resumed_injector.calls == 2  # first cell came from journal
        assert result.outcomes[0].from_journal
        # The journalled evaluation matches a fresh one bit-for-bit.
        fresh = Runner(scale=self.SCALE, seed=2)
        expected = fresh.evaluate(designs_for(fresh)[0], workloads[0])
        assert result.outcomes[0].evaluation == expected

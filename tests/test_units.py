"""Unit-helper tests."""

import pytest

from repro.units import (
    GiB,
    KiB,
    MiB,
    format_bytes,
    is_power_of_two,
    log2_int,
    parse_bytes,
)


class TestPowersOfTwo:
    def test_powers_are_detected(self):
        for exponent in range(0, 40):
            assert is_power_of_two(1 << exponent)

    def test_non_powers_are_rejected(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 9, 12, 100, 1023):
            assert not is_power_of_two(value)

    def test_log2_int_roundtrip(self):
        for exponent in (0, 1, 5, 12, 30):
            assert log2_int(1 << exponent) == exponent

    def test_log2_int_rejects_non_powers(self):
        with pytest.raises(ValueError):
            log2_int(12)
        with pytest.raises(ValueError):
            log2_int(0)


class TestFormatBytes:
    def test_plain_bytes(self):
        assert format_bytes(64) == "64B"

    def test_kb(self):
        assert format_bytes(512 * KiB) == "512KB"

    def test_mb(self):
        assert format_bytes(16 * MiB) == "16MB"

    def test_gb(self):
        assert format_bytes(4 * GiB) == "4GB"

    def test_non_multiple_falls_back_to_bytes(self):
        assert format_bytes(KiB + 1) == "1025B"


class TestParseBytes:
    def test_roundtrip_with_format(self):
        for value in (64, 4 * KiB, 16 * MiB, 2 * GiB):
            assert parse_bytes(format_bytes(value)) == value

    def test_case_insensitive(self):
        assert parse_bytes("16mb") == 16 * MiB

    def test_fractional_mb(self):
        assert parse_bytes("0.5MB") == 512 * KiB

    def test_rejects_garbage(self):
        for bad in ("", "MB", "x16MB", "-1KB", "1.5B"):
            with pytest.raises(ValueError):
                parse_bytes(bad)

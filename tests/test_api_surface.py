"""API surface tests: exports resolve, errors hierarchy, version."""

import importlib

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_error_hierarchy(self):
        from repro.errors import (
            ConfigError,
            ModelError,
            ReproError,
            SimulationError,
            TraceError,
        )

        for exc in (ConfigError, TraceError, SimulationError, ModelError):
            assert issubclass(exc, ReproError)
        assert issubclass(ConfigError, ValueError)

    def test_catching_base_catches_all(self):
        from repro.errors import ConfigError, ReproError

        with pytest.raises(ReproError):
            raise ConfigError("x")


PACKAGES = [
    "repro.trace",
    "repro.cache",
    "repro.tech",
    "repro.model",
    "repro.designs",
    "repro.partition",
    "repro.endurance",
    "repro.workloads",
    "repro.experiments",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_package_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__) > 40

    def test_every_module_has_docstring(self):
        import pathlib

        src = pathlib.Path(repro.__file__).parent
        missing = []
        for path in src.rglob("*.py"):
            rel = path.relative_to(src)
            if rel.name == "__main__.py":
                continue  # importing would execute the CLI
            module = "repro." + str(rel.with_suffix("")).replace("/", ".")
            module = module.removesuffix(".__init__")
            mod = importlib.import_module(module)
            if not mod.__doc__:
                missing.append(module)
        assert not missing, f"modules without docstrings: {missing}"

"""Design-comparison attribution tests."""

import pytest

from repro.designs.configs import N_CONFIGS
from repro.designs.nmm import NMMDesign
from repro.designs.reference import ReferenceDesign
from repro.experiments.compare import explain_difference, render_comparison
from repro.experiments.runner import Runner
from repro.tech.params import PCM, STTRAM
from repro.workloads.registry import get_workload

SCALE = 1.0 / 8192


@pytest.fixture(scope="module")
def runner():
    return Runner(scale=SCALE, seed=6)


@pytest.fixture(scope="module")
def cg():
    return get_workload("CG")


class TestExplainDifference:
    def test_identical_designs_zero_delta(self, runner, cg):
        a = NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                      reference=runner.reference)
        b = NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                      reference=runner.reference)
        comparison = explain_difference(runner, a, b, cg)
        assert comparison.time_delta_ns == 0.0
        assert comparison.dynamic_delta_pj == 0.0
        assert comparison.static_delta_w == 0.0

    def test_nvm_vs_reference_attributed_to_new_levels(self, runner, cg):
        ref = ReferenceDesign(scale=SCALE, reference=runner.reference)
        nmm = NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                        reference=runner.reference)
        comparison = explain_difference(runner, ref, nmm, cg)
        levels = {d.level: d for d in comparison.levels}
        # The new levels appear with positive time contributions...
        assert levels["DRAM$"].time_ns > 0
        assert levels["NVM"].time_ns > 0
        # ...and the removed DRAM main memory with a negative one.
        assert levels["DRAM"].time_ns < 0
        # SRAM levels are identical between the two designs.
        for name in ("L1", "L2", "L3"):
            assert levels[name].time_ns == 0.0

    def test_static_delta_sign(self, runner, cg):
        """NMM swaps footprint-sized DRAM for a small cache: static
        power must drop."""
        ref = ReferenceDesign(scale=SCALE, reference=runner.reference)
        nmm = NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                        reference=runner.reference)
        comparison = explain_difference(runner, ref, nmm, cg)
        assert comparison.static_delta_w < 0

    def test_tech_swap_attributed_to_memory_level(self, runner, cg):
        pcm = NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                        reference=runner.reference)
        stt = NMMDesign(STTRAM, N_CONFIGS["N6"], scale=SCALE,
                        reference=runner.reference)
        comparison = explain_difference(runner, pcm, stt, cg)
        nonzero = [d.level for d in comparison.levels if d.time_ns != 0]
        assert nonzero == ["NVM"]  # only the NVM binding changed

    def test_dominant_level(self, runner, cg):
        ref = ReferenceDesign(scale=SCALE, reference=runner.reference)
        nmm = NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                        reference=runner.reference)
        comparison = explain_difference(runner, ref, nmm, cg)
        assert comparison.dominant_time_level() in ("DRAM", "DRAM$", "NVM")


class TestRender:
    def test_render_contains_labels_and_levels(self, runner, cg):
        ref = ReferenceDesign(scale=SCALE, reference=runner.reference)
        nmm = NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                        reference=runner.reference)
        text = render_comparison(explain_difference(runner, ref, nmm, cg))
        assert "NMM-PCM-N6 vs REF" in text
        assert "NVM" in text and "per-level" in text

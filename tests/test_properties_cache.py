"""Property-based tests: the cache engine against an executable oracle.

The oracle is a dict/list LRU model written for clarity, not speed; the
engine (vectorized, run-collapsed, hashed variants) must agree with it
exactly on hit/miss/writeback accounting for arbitrary access patterns.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheConfig
from repro.cache.setassoc import SetAssociativeCache
from repro.trace.events import AccessBatch
from repro.units import KiB


class OracleLRU:
    """Straight-line LRU write-back cache model (block granularity)."""

    def __init__(self, capacity, ways, block):
        self.block_bits = block.bit_length() - 1
        self.nsets = capacity // (block * ways)
        self.ways = ways
        self.sets = [[] for _ in range(self.nsets)]
        self.dirty = set()
        self.hits = self.misses = self.writebacks = 0

    def access(self, addr, is_store):
        blk = addr >> self.block_bits
        s = self.sets[blk % self.nsets]
        if blk in s:
            s.remove(blk)
            s.insert(0, blk)
            self.hits += 1
        else:
            self.misses += 1
            s.insert(0, blk)
            if len(s) > self.ways:
                victim = s.pop()
                if victim in self.dirty:
                    self.dirty.discard(victim)
                    self.writebacks += 1
        if is_store:
            self.dirty.add(blk)


accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4 * KiB - 8),
        st.booleans(),
    ),
    min_size=1,
    max_size=300,
)


@given(accesses)
@settings(max_examples=60, deadline=None)
def test_engine_matches_oracle(pattern):
    engine = SetAssociativeCache(CacheConfig("E", 1 * KiB, 2, 64))
    oracle = OracleLRU(1 * KiB, 2, 64)
    addrs = np.array([a for a, _ in pattern], dtype=np.uint64)
    kinds = np.array([int(s) for _, s in pattern], dtype=np.uint8)
    engine.process(AccessBatch.from_lists(addrs, 8, kinds))
    for a, s in pattern:
        oracle.access(a, s)
    assert engine.stats.hits == oracle.hits
    assert engine.stats.misses == oracle.misses
    assert engine.stats.writebacks == oracle.writebacks


@given(accesses, st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_chunking_invariance(pattern, n_chunks):
    """Splitting a stream into arbitrary chunks must not change stats."""
    addrs = np.array([a for a, _ in pattern], dtype=np.uint64)
    kinds = np.array([int(s) for _, s in pattern], dtype=np.uint8)
    whole = SetAssociativeCache(CacheConfig("W", 1 * KiB, 2, 64))
    whole.process(AccessBatch.from_lists(addrs, 8, kinds))
    split = SetAssociativeCache(CacheConfig("W", 1 * KiB, 2, 64))
    for part_a, part_k in zip(
        np.array_split(addrs, n_chunks), np.array_split(kinds, n_chunks)
    ):
        if len(part_a):
            split.process(AccessBatch.from_lists(part_a, 8, part_k))
    assert whole.stats.as_dict() == split.stats.as_dict()


@given(accesses)
@settings(max_examples=40, deadline=None)
def test_conservation_laws(pattern):
    """hits + misses == accesses; fills == misses; writebacks <= fills
    history; resident blocks <= capacity."""
    cache = SetAssociativeCache(CacheConfig("C", 512, 2, 64))
    addrs = np.array([a for a, _ in pattern], dtype=np.uint64)
    kinds = np.array([int(s) for _, s in pattern], dtype=np.uint8)
    cache.process(AccessBatch.from_lists(addrs, 8, kinds))
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses == len(pattern)
    assert stats.fills == stats.misses
    assert stats.writebacks <= stats.fills
    assert cache.resident_blocks() <= cache.config.num_blocks


@given(accesses)
@settings(max_examples=40, deadline=None)
def test_downstream_volume_conservation(pattern):
    """Every emitted fill is a load of exactly one block; every emitted
    writeback is a store of one block; their counts match the stats."""
    cache = SetAssociativeCache(CacheConfig("C", 512, 2, 64))
    addrs = np.array([a for a, _ in pattern], dtype=np.uint64)
    kinds = np.array([int(s) for _, s in pattern], dtype=np.uint8)
    out = cache.process(AccessBatch.from_lists(addrs, 8, kinds))
    fills = int((out.is_store == 0).sum())
    writebacks = int((out.is_store == 1).sum())
    assert fills == cache.stats.fills
    assert writebacks == cache.stats.writebacks
    assert all(size == 64 for size in out.sizes.tolist())


@given(accesses)
@settings(max_examples=40, deadline=None)
def test_sectored_writeback_subset_of_stores(pattern):
    """A sectored cache may only write back sectors that were stored to."""
    cache = SetAssociativeCache(
        CacheConfig("P", 2 * KiB, 2, 256, sector_size=64)
    )
    addrs = np.array([a for a, _ in pattern], dtype=np.uint64)
    kinds = np.array([int(s) for _, s in pattern], dtype=np.uint8)
    out = cache.process(AccessBatch.from_lists(addrs, 8, kinds))
    flushed = cache.flush_dirty()
    stored_sectors = {
        (int(a) >> 6) for a, s in pattern if s
    }
    written_back = set()
    for batch in (out, flushed):
        for addr, is_store in zip(batch.addresses, batch.is_store):
            if is_store:
                written_back.add(int(addr) >> 6)
    assert written_back <= stored_sectors


@given(accesses)
@settings(max_examples=30, deadline=None)
def test_sectored_page_hit_rate_at_least_unsectored(pattern):
    """Sectoring changes writebacks only, never hits/misses."""
    addrs = np.array([a for a, _ in pattern], dtype=np.uint64)
    kinds = np.array([int(s) for _, s in pattern], dtype=np.uint8)
    plain = SetAssociativeCache(CacheConfig("A", 2 * KiB, 2, 256))
    sect = SetAssociativeCache(
        CacheConfig("B", 2 * KiB, 2, 256, sector_size=64)
    )
    plain.process(AccessBatch.from_lists(addrs, 8, kinds))
    sect.process(AccessBatch.from_lists(addrs, 8, kinds))
    assert plain.stats.hits == sect.stats.hits
    assert plain.stats.misses == sect.stats.misses


class OracleHashedLRU(OracleLRU):
    """Oracle variant using the engine's multiplicative set hash."""

    def access(self, addr, is_store):
        blk = addr >> self.block_bits
        set_index = ((blk * 2654435761) >> 15) & (self.nsets - 1)
        s = self.sets[set_index]
        if blk in s:
            s.remove(blk)
            s.insert(0, blk)
            self.hits += 1
        else:
            self.misses += 1
            s.insert(0, blk)
            if len(s) > self.ways:
                victim = s.pop()
                if victim in self.dirty:
                    self.dirty.discard(victim)
                    self.writebacks += 1
        if is_store:
            self.dirty.add(blk)


@given(accesses)
@settings(max_examples=50, deadline=None)
def test_hashed_engine_matches_hashed_oracle(pattern):
    engine = SetAssociativeCache(
        CacheConfig("H", 1 * KiB, 2, 64, hashed_sets=True)
    )
    oracle = OracleHashedLRU(1 * KiB, 2, 64)
    addrs = np.array([a for a, _ in pattern], dtype=np.uint64)
    kinds = np.array([int(s) for _, s in pattern], dtype=np.uint8)
    engine.process(AccessBatch.from_lists(addrs, 8, kinds))
    for a, s in pattern:
        oracle.access(a, s)
    assert engine.stats.hits == oracle.hits
    assert engine.stats.misses == oracle.misses
    assert engine.stats.writebacks == oracle.writebacks


class OracleFIFO:
    """Straight-line FIFO write-back model."""

    def __init__(self, capacity, ways, block):
        self.block_bits = block.bit_length() - 1
        self.nsets = capacity // (block * ways)
        self.ways = ways
        self.sets = [[] for _ in range(self.nsets)]
        self.dirty = set()
        self.hits = self.misses = self.writebacks = 0

    def access(self, addr, is_store):
        blk = addr >> self.block_bits
        s = self.sets[blk % self.nsets]
        if blk in s:
            self.hits += 1  # no recency update under FIFO
        else:
            self.misses += 1
            s.insert(0, blk)
            if len(s) > self.ways:
                victim = s.pop()
                if victim in self.dirty:
                    self.dirty.discard(victim)
                    self.writebacks += 1
        if is_store:
            self.dirty.add(blk)


@given(accesses)
@settings(max_examples=50, deadline=None)
def test_fifo_engine_matches_fifo_oracle(pattern):
    engine = SetAssociativeCache(CacheConfig("F", 1 * KiB, 2, 64, policy="fifo"))
    oracle = OracleFIFO(1 * KiB, 2, 64)
    addrs = np.array([a for a, _ in pattern], dtype=np.uint64)
    kinds = np.array([int(s) for _, s in pattern], dtype=np.uint8)
    engine.process(AccessBatch.from_lists(addrs, 8, kinds))
    for a, s in pattern:
        oracle.access(a, s)
    assert engine.stats.hits == oracle.hits
    assert engine.stats.misses == oracle.misses
    assert engine.stats.writebacks == oracle.writebacks

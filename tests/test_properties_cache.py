"""Property-based tests: the cache engine against an executable oracle.

The oracle is a dict/list LRU model written for clarity, not speed; the
engine (vectorized, run-collapsed, hashed variants) must agree with it
exactly on hit/miss/writeback accounting for arbitrary access patterns.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheConfig
from repro.cache.setassoc import SetAssociativeCache
from repro.trace.events import AccessBatch
from repro.units import KiB


class OracleLRU:
    """Straight-line LRU write-back cache model (block granularity)."""

    def __init__(self, capacity, ways, block):
        self.block_bits = block.bit_length() - 1
        self.nsets = capacity // (block * ways)
        self.ways = ways
        self.sets = [[] for _ in range(self.nsets)]
        self.dirty = set()
        self.hits = self.misses = self.writebacks = 0

    def access(self, addr, is_store):
        blk = addr >> self.block_bits
        s = self.sets[blk % self.nsets]
        if blk in s:
            s.remove(blk)
            s.insert(0, blk)
            self.hits += 1
        else:
            self.misses += 1
            s.insert(0, blk)
            if len(s) > self.ways:
                victim = s.pop()
                if victim in self.dirty:
                    self.dirty.discard(victim)
                    self.writebacks += 1
        if is_store:
            self.dirty.add(blk)


accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4 * KiB - 8),
        st.booleans(),
    ),
    min_size=1,
    max_size=300,
)


@given(accesses)
@settings(max_examples=60, deadline=None)
def test_engine_matches_oracle(pattern):
    engine = SetAssociativeCache(CacheConfig("E", 1 * KiB, 2, 64))
    oracle = OracleLRU(1 * KiB, 2, 64)
    addrs = np.array([a for a, _ in pattern], dtype=np.uint64)
    kinds = np.array([int(s) for _, s in pattern], dtype=np.uint8)
    engine.process(AccessBatch.from_lists(addrs, 8, kinds))
    for a, s in pattern:
        oracle.access(a, s)
    assert engine.stats.hits == oracle.hits
    assert engine.stats.misses == oracle.misses
    assert engine.stats.writebacks == oracle.writebacks


@given(accesses, st.integers(min_value=1, max_value=5))
@settings(max_examples=30, deadline=None)
def test_chunking_invariance(pattern, n_chunks):
    """Splitting a stream into arbitrary chunks must not change stats."""
    addrs = np.array([a for a, _ in pattern], dtype=np.uint64)
    kinds = np.array([int(s) for _, s in pattern], dtype=np.uint8)
    whole = SetAssociativeCache(CacheConfig("W", 1 * KiB, 2, 64))
    whole.process(AccessBatch.from_lists(addrs, 8, kinds))
    split = SetAssociativeCache(CacheConfig("W", 1 * KiB, 2, 64))
    for part_a, part_k in zip(
        np.array_split(addrs, n_chunks), np.array_split(kinds, n_chunks)
    ):
        if len(part_a):
            split.process(AccessBatch.from_lists(part_a, 8, part_k))
    assert whole.stats.as_dict() == split.stats.as_dict()


@given(accesses)
@settings(max_examples=40, deadline=None)
def test_conservation_laws(pattern):
    """hits + misses == accesses; fills == misses; writebacks <= fills
    history; resident blocks <= capacity."""
    cache = SetAssociativeCache(CacheConfig("C", 512, 2, 64))
    addrs = np.array([a for a, _ in pattern], dtype=np.uint64)
    kinds = np.array([int(s) for _, s in pattern], dtype=np.uint8)
    cache.process(AccessBatch.from_lists(addrs, 8, kinds))
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses == len(pattern)
    assert stats.fills == stats.misses
    assert stats.writebacks <= stats.fills
    assert cache.resident_blocks() <= cache.config.num_blocks


@given(accesses)
@settings(max_examples=40, deadline=None)
def test_downstream_volume_conservation(pattern):
    """Every emitted fill is a load of exactly one block; every emitted
    writeback is a store of one block; their counts match the stats."""
    cache = SetAssociativeCache(CacheConfig("C", 512, 2, 64))
    addrs = np.array([a for a, _ in pattern], dtype=np.uint64)
    kinds = np.array([int(s) for _, s in pattern], dtype=np.uint8)
    out = cache.process(AccessBatch.from_lists(addrs, 8, kinds))
    fills = int((out.is_store == 0).sum())
    writebacks = int((out.is_store == 1).sum())
    assert fills == cache.stats.fills
    assert writebacks == cache.stats.writebacks
    assert all(size == 64 for size in out.sizes.tolist())


@given(accesses)
@settings(max_examples=40, deadline=None)
def test_sectored_writeback_subset_of_stores(pattern):
    """A sectored cache may only write back sectors that were stored to."""
    cache = SetAssociativeCache(
        CacheConfig("P", 2 * KiB, 2, 256, sector_size=64)
    )
    addrs = np.array([a for a, _ in pattern], dtype=np.uint64)
    kinds = np.array([int(s) for _, s in pattern], dtype=np.uint8)
    out = cache.process(AccessBatch.from_lists(addrs, 8, kinds))
    flushed = cache.flush_dirty()
    stored_sectors = {
        (int(a) >> 6) for a, s in pattern if s
    }
    written_back = set()
    for batch in (out, flushed):
        for addr, is_store in zip(batch.addresses, batch.is_store):
            if is_store:
                written_back.add(int(addr) >> 6)
    assert written_back <= stored_sectors


@given(accesses)
@settings(max_examples=30, deadline=None)
def test_sectored_page_hit_rate_at_least_unsectored(pattern):
    """Sectoring changes writebacks only, never hits/misses."""
    addrs = np.array([a for a, _ in pattern], dtype=np.uint64)
    kinds = np.array([int(s) for _, s in pattern], dtype=np.uint8)
    plain = SetAssociativeCache(CacheConfig("A", 2 * KiB, 2, 256))
    sect = SetAssociativeCache(
        CacheConfig("B", 2 * KiB, 2, 256, sector_size=64)
    )
    plain.process(AccessBatch.from_lists(addrs, 8, kinds))
    sect.process(AccessBatch.from_lists(addrs, 8, kinds))
    assert plain.stats.hits == sect.stats.hits
    assert plain.stats.misses == sect.stats.misses


class OracleHashedLRU(OracleLRU):
    """Oracle variant using the engine's multiplicative set hash."""

    def access(self, addr, is_store):
        blk = addr >> self.block_bits
        set_index = ((blk * 2654435761) >> 15) & (self.nsets - 1)
        s = self.sets[set_index]
        if blk in s:
            s.remove(blk)
            s.insert(0, blk)
            self.hits += 1
        else:
            self.misses += 1
            s.insert(0, blk)
            if len(s) > self.ways:
                victim = s.pop()
                if victim in self.dirty:
                    self.dirty.discard(victim)
                    self.writebacks += 1
        if is_store:
            self.dirty.add(blk)


@given(accesses)
@settings(max_examples=50, deadline=None)
def test_hashed_engine_matches_hashed_oracle(pattern):
    engine = SetAssociativeCache(
        CacheConfig("H", 1 * KiB, 2, 64, hashed_sets=True)
    )
    oracle = OracleHashedLRU(1 * KiB, 2, 64)
    addrs = np.array([a for a, _ in pattern], dtype=np.uint64)
    kinds = np.array([int(s) for _, s in pattern], dtype=np.uint8)
    engine.process(AccessBatch.from_lists(addrs, 8, kinds))
    for a, s in pattern:
        oracle.access(a, s)
    assert engine.stats.hits == oracle.hits
    assert engine.stats.misses == oracle.misses
    assert engine.stats.writebacks == oracle.writebacks


class OracleFIFO:
    """Straight-line FIFO write-back model."""

    def __init__(self, capacity, ways, block):
        self.block_bits = block.bit_length() - 1
        self.nsets = capacity // (block * ways)
        self.ways = ways
        self.sets = [[] for _ in range(self.nsets)]
        self.dirty = set()
        self.hits = self.misses = self.writebacks = 0

    def access(self, addr, is_store):
        blk = addr >> self.block_bits
        s = self.sets[blk % self.nsets]
        if blk in s:
            self.hits += 1  # no recency update under FIFO
        else:
            self.misses += 1
            s.insert(0, blk)
            if len(s) > self.ways:
                victim = s.pop()
                if victim in self.dirty:
                    self.dirty.discard(victim)
                    self.writebacks += 1
        if is_store:
            self.dirty.add(blk)


@given(accesses)
@settings(max_examples=50, deadline=None)
def test_fifo_engine_matches_fifo_oracle(pattern):
    engine = SetAssociativeCache(CacheConfig("F", 1 * KiB, 2, 64, policy="fifo"))
    oracle = OracleFIFO(1 * KiB, 2, 64)
    addrs = np.array([a for a, _ in pattern], dtype=np.uint64)
    kinds = np.array([int(s) for _, s in pattern], dtype=np.uint8)
    engine.process(AccessBatch.from_lists(addrs, 8, kinds))
    for a, s in pattern:
        oracle.access(a, s)
    assert engine.stats.hits == oracle.hits
    assert engine.stats.misses == oracle.misses
    assert engine.stats.writebacks == oracle.writebacks


# ----------------------------------------------------------------------
# Scalar vs set-parallel engine differential
# ----------------------------------------------------------------------
#
# The setpar engine's contract is bit-identical behaviour, not
# approximate agreement: same LevelStats, same emitted requests in the
# same order, same resident/dirty end state. These tests drive random
# mixes of streaming runs and random addresses through both engines and
# compare everything observable.

import pytest

import repro.cache.setassoc as setassoc_mod


def _random_batch(rng, n_events, block, store_frac):
    """A mixed streaming/random batch (runs of 1-4 equal blocks)."""
    base = rng.integers(0, 1 << 20, size=n_events).astype(np.uint64)
    rep = rng.integers(1, 5, size=n_events)
    addrs = np.repeat(base * np.uint64(block), rep).astype(np.uint64)
    sizes = np.full(len(addrs), max(1, min(8, block)), dtype=np.uint32)
    stores = (rng.random(len(addrs)) < store_frac).astype(np.uint8)
    return addrs, sizes, stores


def _engine_pair(ways, nsets, block, hashed):
    cap = nsets * ways * block
    scalar = SetAssociativeCache(
        CacheConfig("D", cap, ways, block, hashed_sets=hashed,
                    engine="scalar")
    )
    setpar = SetAssociativeCache(
        CacheConfig("D", cap, ways, block, hashed_sets=hashed,
                    engine="setpar")
    )
    return scalar, setpar


def _assert_batches_equal(a, b):
    assert np.array_equal(a.addresses, b.addresses)
    assert np.array_equal(a.sizes, b.sizes)
    assert np.array_equal(a.is_store, b.is_store)


@pytest.mark.parametrize("ways", [1, 2, 4, 8])
@pytest.mark.parametrize("store_frac", [0.0, 0.3, 1.0])
@pytest.mark.parametrize("hashed", [False, True])
def test_setpar_differential_single_chunk(
    monkeypatch, ways, store_frac, hashed
):
    """One chunk: identical stats, emissions (content AND order), and
    resident/dirty end state across both engines."""
    monkeypatch.setattr(setassoc_mod, "SETPAR_MIN_LANES", 2)
    rng = np.random.default_rng(1000 * ways + int(store_frac * 10))
    scalar, setpar = _engine_pair(ways, 64, 64, hashed)
    addrs, sizes, stores = _random_batch(rng, 400, 64, store_frac)
    out_sc = scalar.process(AccessBatch(addrs, sizes, stores))
    out_sp = setpar.process(
        AccessBatch(addrs.copy(), sizes.copy(), stores.copy())
    )
    _assert_batches_equal(out_sc, out_sp)
    assert scalar.stats.as_dict() == setpar.stats.as_dict()
    assert scalar._sets == setpar._sets
    assert scalar._dirty == setpar._dirty
    assert scalar.resident_blocks() == setpar.resident_blocks()


@pytest.mark.parametrize("drain", [False, True])
@pytest.mark.parametrize("min_lanes", [1, 4, 32])
def test_setpar_differential_multi_chunk(monkeypatch, drain, min_lanes):
    """Multiple chunks carry warm state across process() calls; an
    optional flush at the end must drain identical dirty lines in
    identical order. Sweeping SETPAR_MIN_LANES moves the hybrid
    vector/scalar cutoff so skewed tails land on both paths."""
    monkeypatch.setattr(setassoc_mod, "SETPAR_MIN_LANES", min_lanes)
    rng = np.random.default_rng(7 + min_lanes)
    scalar, setpar = _engine_pair(4, 32, 64, True)
    for _ in range(4):
        addrs, sizes, stores = _random_batch(rng, 300, 64, 0.3)
        out_sc = scalar.process(AccessBatch(addrs, sizes, stores))
        out_sp = setpar.process(
            AccessBatch(addrs.copy(), sizes.copy(), stores.copy())
        )
        _assert_batches_equal(out_sc, out_sp)
    if drain:
        _assert_batches_equal(scalar.flush_dirty(), setpar.flush_dirty())
    assert scalar.stats.as_dict() == setpar.stats.as_dict()
    assert scalar._sets == setpar._sets
    assert scalar._dirty == setpar._dirty


def test_setpar_near_max_address_latch(monkeypatch):
    """Blocks too large for the packed-tag scheme flip the sticky
    scalar latch; behaviour must stay identical before, during, and
    after the latch trips (and reset() must clear it)."""
    monkeypatch.setattr(setassoc_mod, "SETPAR_MIN_LANES", 1)
    rng = np.random.default_rng(99)
    # Byte-granularity blocks: the block number IS the address, so a
    # near-2^64 address exceeds the packable range (2^63 - 2).
    scalar, setpar = _engine_pair(2, 8, 1, False)
    for chunk in range(3):
        addrs, sizes, stores = _random_batch(rng, 150, 1, 0.5)
        if chunk == 1:
            addrs[len(addrs) // 2] = np.uint64(2**64 - 1)
        out_sc = scalar.process(AccessBatch(addrs, sizes, stores))
        out_sp = setpar.process(
            AccessBatch(addrs.copy(), sizes.copy(), stores.copy())
        )
        _assert_batches_equal(out_sc, out_sp)
    assert setpar._setpar_unsafe
    assert scalar.stats.as_dict() == setpar.stats.as_dict()
    setpar.reset()
    assert not setpar._setpar_unsafe


@given(accesses)
@settings(max_examples=60, deadline=None)
def test_setpar_differential_hypothesis(pattern):
    """Arbitrary hypothesis-generated patterns agree bit-exactly
    (vector path forced by the tiny-lane threshold)."""
    old = setassoc_mod.SETPAR_MIN_LANES
    setassoc_mod.SETPAR_MIN_LANES = 1
    try:
        addrs = np.array([a for a, _ in pattern], dtype=np.uint64)
        kinds = np.array([int(s) for _, s in pattern], dtype=np.uint8)
        scalar, setpar = _engine_pair(2, 8, 64, False)
        out_sc = scalar.process(AccessBatch.from_lists(addrs, 8, kinds))
        out_sp = setpar.process(AccessBatch.from_lists(addrs, 8, kinds))
        _assert_batches_equal(out_sc, out_sp)
        assert scalar.stats.as_dict() == setpar.stats.as_dict()
        assert scalar._sets == setpar._sets
        assert scalar._dirty == setpar._dirty
    finally:
        setassoc_mod.SETPAR_MIN_LANES = old

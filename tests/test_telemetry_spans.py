"""Spans, events, and the process-wide active telemetry."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.core import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    activate,
    get_active,
    set_active,
)
from repro.telemetry.exporters import read_jsonl

pytestmark = pytest.mark.telemetry


class FakeClock:
    """Deterministic monotonic clock advanced by the test."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


class TestSpans:
    def test_span_measures_duration(self, tmp_path, clock):
        telemetry = Telemetry(tmp_path, clock=clock)
        with telemetry.span("runner.trace", workload="CG") as span:
            clock.advance(1.5)
        assert span.duration_s == pytest.approx(1.5)

    def test_span_feeds_counter_and_histogram(self, tmp_path, clock):
        telemetry = Telemetry(tmp_path, clock=clock)
        with telemetry.span("runner.trace"):
            clock.advance(0.2)
        with telemetry.span("runner.trace"):
            clock.advance(0.3)
        counter = telemetry.counter("repro_spans_total", name="runner.trace")
        hist = telemetry.histogram("repro_span_seconds", name="runner.trace")
        assert counter.value == 2
        assert hist.count == 2
        assert hist.sum == pytest.approx(0.5)

    def test_nested_spans_record_parent(self, tmp_path, clock):
        telemetry = Telemetry(tmp_path, clock=clock)
        with telemetry.span("outer"):
            with telemetry.span("inner") as inner:
                pass
        telemetry.close()
        assert inner.parent == "outer"
        spans = {
            e["name"]: e
            for e in read_jsonl(tmp_path / "events.jsonl")
            if e["kind"] == "span"
        }
        assert "parent" not in spans["outer"]
        assert spans["inner"]["parent"] == "outer"

    def test_failed_span_is_flagged_and_reraises(self, tmp_path, clock):
        telemetry = Telemetry(tmp_path, clock=clock)
        with pytest.raises(ValueError):
            with telemetry.span("doomed"):
                raise ValueError("boom")
        telemetry.close()
        [event] = [
            e for e in read_jsonl(tmp_path / "events.jsonl")
            if e["kind"] == "span"
        ]
        assert event["failed"] is True

    def test_span_event_carries_meta(self, tmp_path, clock):
        telemetry = Telemetry(tmp_path, clock=clock)
        with telemetry.span("runner.trace", workload="CG"):
            clock.advance(0.25)
        telemetry.close()
        [event] = read_jsonl(tmp_path / "events.jsonl")
        assert event["workload"] == "CG"
        assert event["duration_s"] == pytest.approx(0.25)

    def test_memory_only_telemetry_still_times(self, clock):
        telemetry = Telemetry(clock=clock)  # no directory
        with telemetry.span("x") as span:
            clock.advance(2.0)
        assert span.duration_s == pytest.approx(2.0)
        assert telemetry.counter("repro_spans_total", name="x").value == 1


class TestEvents:
    def test_events_are_timestamped_jsonl(self, tmp_path):
        times = iter([111.0, 222.0])
        telemetry = Telemetry(tmp_path, wall_clock=lambda: next(times))
        telemetry.event("sweep_started", cells=4)
        telemetry.event("cell_finished", status="ok")
        telemetry.close()
        events = read_jsonl(tmp_path / "events.jsonl")
        assert events[0] == {
            "ts": 111.0, "kind": "sweep_started", "cells": 4, "seq": 0,
        }
        assert events[1]["ts"] == 222.0
        assert events[1]["seq"] == 1  # per-directory monotone counter

    def test_event_lines_are_valid_json_objects(self, tmp_path):
        telemetry = Telemetry(tmp_path)
        telemetry.event("x", value=1)
        telemetry.close()
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        assert all(isinstance(json.loads(line), dict) for line in lines)


class TestNullTelemetry:
    def test_null_span_still_measures(self):
        with NULL_TELEMETRY.span("anything") as span:
            pass
        assert span.duration_s >= 0.0
        assert span.parent is None

    def test_null_records_nothing(self, tmp_path):
        null = NullTelemetry()
        null.event("ignored")
        null.counter("repro_x").inc()
        null.flush()
        null.close()
        assert null.registry.snapshot() == []
        assert list(tmp_path.iterdir()) == []

    def test_null_window_collector_is_an_error(self):
        with pytest.raises(RuntimeError, match="enabled"):
            NULL_TELEMETRY.window_collector("ctx", list)


class TestActiveInstance:
    def test_default_is_null(self):
        assert get_active() is NULL_TELEMETRY

    def test_set_active_and_reset(self, tmp_path):
        telemetry = Telemetry(tmp_path)
        try:
            set_active(telemetry)
            assert get_active() is telemetry
        finally:
            set_active(None)
        assert get_active() is NULL_TELEMETRY

    def test_activate_scopes_and_restores(self, tmp_path):
        telemetry = Telemetry(tmp_path)
        with activate(telemetry):
            assert get_active() is telemetry
        assert get_active() is NULL_TELEMETRY

    def test_activate_restores_on_error(self, tmp_path):
        telemetry = Telemetry(tmp_path)
        with pytest.raises(RuntimeError):
            with activate(telemetry):
                raise RuntimeError("boom")
        assert get_active() is NULL_TELEMETRY


class TestLifecycle:
    def test_close_writes_prometheus_snapshot(self, tmp_path):
        telemetry = Telemetry(tmp_path)
        telemetry.counter("repro_cells_total").inc(3)
        telemetry.close()
        text = (tmp_path / "metrics.prom").read_text()
        assert "repro_cells_total 3" in text

    def test_context_manager_closes(self, tmp_path):
        with Telemetry(tmp_path) as telemetry:
            telemetry.event("x")
        assert (tmp_path / "events.jsonl").exists()
        assert (tmp_path / "metrics.prom").exists()

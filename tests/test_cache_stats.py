"""LevelStats / HierarchyStats tests."""

import pytest

from repro.cache.stats import HierarchyStats, LevelStats


class TestLevelStats:
    def test_defaults_zero(self):
        stats = LevelStats(name="X")
        assert stats.accesses == 0
        assert stats.hit_rate == 0.0
        assert stats.miss_rate == 0.0

    def test_rates(self):
        stats = LevelStats(
            name="X", loads=8, stores=2, load_hits=6, load_misses=2,
            store_hits=1, store_misses=1,
        )
        assert stats.hits == 7
        assert stats.misses == 3
        assert stats.hit_rate == pytest.approx(0.7)
        assert stats.miss_rate == pytest.approx(0.3)

    def test_merge(self):
        a = LevelStats(name="X", loads=1, load_hits=1)
        b = LevelStats(name="X", loads=2, load_misses=2, writebacks=1)
        merged = a.merge(b)
        assert merged.loads == 3
        assert merged.load_hits == 1
        assert merged.writebacks == 1

    def test_merge_name_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LevelStats(name="A").merge(LevelStats(name="B"))

    def test_as_dict_roundtrip(self):
        stats = LevelStats(name="X", loads=5, store_bits=320)
        data = stats.as_dict()
        assert data["name"] == "X"
        assert data["loads"] == 5
        assert data["store_bits"] == 320


class TestHierarchyStats:
    def make(self):
        return HierarchyStats(
            levels=[LevelStats(name="L1", loads=10), LevelStats(name="MEM", loads=2)],
            references=10,
        )

    def test_level_lookup(self):
        stats = self.make()
        assert stats.level("MEM").loads == 2
        with pytest.raises(KeyError):
            stats.level("L9")

    def test_level_names(self):
        assert self.make().level_names == ["L1", "MEM"]

    def test_merge(self):
        merged = self.make().merge(self.make())
        assert merged.references == 20
        assert merged.level("L1").loads == 20

    def test_merge_shape_mismatch_rejected(self):
        other = HierarchyStats(levels=[LevelStats(name="L1")], references=1)
        with pytest.raises(ValueError):
            self.make().merge(other)

    def test_as_dict(self):
        data = self.make().as_dict()
        assert data["references"] == 10
        assert len(data["levels"]) == 2

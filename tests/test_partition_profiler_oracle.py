"""Range profiler and placement oracle tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.model.evaluate import Evaluation
from repro.partition.oracle import enumerate_placements
from repro.partition.profiler import RangeProfile, profile_ranges
from repro.partition.ranges import AddressRange
from repro.trace.tracer import Tracer


def traced_run(hot_accesses=900, cold_accesses=100):
    """Two regions: 'hot' gets most references, 'cold' a few."""
    tracer = Tracer()
    hot = tracer.array("hot", (1024,))
    cold = tracer.array("cold", (1024,))
    rng = np.random.default_rng(0)
    hot_idx = rng.integers(0, 1024, hot_accesses)
    cold_idx = rng.integers(0, 1024, cold_accesses)
    _ = hot[hot_idx]
    cold[cold_idx] = 1.0
    return tracer


class TestProfiler:
    def test_hot_range_identified_first(self):
        tracer = traced_run()
        profiles = profile_ranges(tracer.stream, tracer, coverage=0.99, merge_gap=0)
        assert profiles[0].range.label == "hot"
        assert profiles[0].loads == 900

    def test_store_fraction(self):
        tracer = traced_run()
        profiles = profile_ranges(tracer.stream, tracer, coverage=0.999, merge_gap=0)
        cold = next(p for p in profiles if "cold" in p.range.label)
        assert cold.store_fraction == 1.0

    def test_coverage_limits_ranges(self):
        tracer = traced_run(hot_accesses=990, cold_accesses=10)
        profiles = profile_ranges(tracer.stream, tracer, coverage=0.9, merge_gap=0)
        assert len(profiles) == 1

    def test_merge_gap_joins_adjacent_regions(self):
        tracer = traced_run()
        # Regions are ~8 KiB each, separated by a guard page.
        profiles = profile_ranges(
            tracer.stream, tracer, coverage=0.999, merge_gap=64 * 1024
        )
        assert len(profiles) == 1
        assert profiles[0].references == 1000

    def test_empty_stream(self):
        tracer = Tracer()
        tracer.allocate("unused", 64)
        assert profile_ranges(tracer.stream, tracer) == []

    def test_no_regions(self):
        assert profile_ranges(Tracer().stream, Tracer()) == []

    def test_invalid_coverage(self):
        tracer = traced_run()
        with pytest.raises(ConfigError):
            profile_ranges(tracer.stream, tracer, coverage=0.0)

    def test_max_ranges_cap(self):
        tracer = Tracer()
        arrays = [tracer.array(f"a{i}", (128,)) for i in range(6)]
        for a in arrays:
            _ = a[:]
        profiles = profile_ranges(
            tracer.stream, tracer, coverage=1.0, merge_gap=0, max_ranges=3
        )
        assert len(profiles) <= 3


def fake_evaluation(edp):
    return Evaluation(
        design_name="D", workload="W", time_s=1.0, dynamic_j=1.0,
        static_j=1.0, energy_j=2.0, edp_js=edp, amat_ns=1.0,
        time_norm=1.0, energy_norm=1.0, dynamic_norm=1.0,
        static_norm=1.0, edp_norm=1.0,
    )


class TestOracle:
    def candidates(self):
        return [
            RangeProfile(AddressRange(0, 1000, "a"), 10, 0, 80, 0),
            RangeProfile(AddressRange(2000, 3000, "b"), 5, 0, 40, 0),
        ]

    def test_single_range_placements_plus_all(self):
        seen = []

        def evaluate(ranges):
            seen.append(tuple(r.label for r in ranges))
            return fake_evaluation(1.0)

        enumerate_placements(
            self.candidates(), evaluate,
            footprint_bytes=4000, dram_capacity_bytes=10_000,
        )
        assert ("a",) in seen and ("b",) in seen
        assert ("a", "b") in seen  # the all-candidates extreme

    def test_sorted_by_objective(self):
        scores = {"a": 5.0, "b": 1.0}

        def evaluate(ranges):
            return fake_evaluation(scores[ranges[0].label] if len(ranges) == 1 else 9.0)

        results = enumerate_placements(
            self.candidates(), evaluate,
            footprint_bytes=4000, dram_capacity_bytes=10_000,
        )
        assert results[0].nvm_ranges[0].label == "b"

    def test_feasibility_flag(self):
        def evaluate(ranges):
            return fake_evaluation(1.0)

        results = enumerate_placements(
            self.candidates(), evaluate,
            footprint_bytes=4000, dram_capacity_bytes=500,
        )
        # Placing only 'b' (1000 B) leaves 3000 B for a 500 B DRAM: infeasible.
        infeasible = [r for r in results if not r.feasible]
        assert infeasible
        # Infeasible placements sort after feasible ones.
        flags = [r.feasible for r in results]
        assert flags == sorted(flags, reverse=True)

    def test_dram_bytes_required(self):
        def evaluate(ranges):
            return fake_evaluation(1.0)

        results = enumerate_placements(
            self.candidates(), evaluate,
            footprint_bytes=4000, dram_capacity_bytes=10_000,
            include_all_nvm=False,
        )
        by_label = {r.nvm_ranges[0].label: r for r in results}
        assert by_label["a"].dram_bytes_required == 3000
        assert by_label["b"].dram_bytes_required == 3000

    def test_objective_validation(self):
        with pytest.raises(ConfigError):
            enumerate_placements(
                self.candidates(), lambda r: fake_evaluation(1.0),
                footprint_bytes=1, dram_capacity_bytes=1, objective="speed",
            )

    def test_label(self):
        def evaluate(ranges):
            return fake_evaluation(1.0)

        results = enumerate_placements(
            self.candidates(), evaluate,
            footprint_bytes=4000, dram_capacity_bytes=10_000,
        )
        assert any("a" in r.label for r in results)

"""Continuous profiling: sampler, watermarks, merge, spool fast path."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.telemetry import observatory
from repro.telemetry.core import (
    DEFAULT_SPOOL_EVENTS,
    RunContext,
    Telemetry,
)
from repro.telemetry.exporters import read_jsonl
from repro.telemetry.observatory import (
    DiffThresholds,
    aggregate_run,
    chrome_trace,
    diff_runs,
    render_diff,
    render_run_overview,
    write_merged,
)
from repro.telemetry.profiling import (
    FLAME_FILE,
    MEMORY_FILE,
    NO_STAGE,
    PROFILE_FILE,
    MemoryTracker,
    ProfilingSession,
    SamplingProfiler,
    fold_records,
    frame_label,
    function_shares,
    hotspot_digests,
    merge_records,
    read_memory_csv,
    read_profile,
    render_flame,
    total_samples,
    write_flame,
    write_memory_csv,
)
from repro.telemetry.registry import (
    DROPPED_SERIES_METRIC,
    MetricsRegistry,
    _NULL_INSTRUMENT,
)
from repro.telemetry.report import render_summary, summarize_directory

pytestmark = pytest.mark.telemetry

RUN = "20260805T120000-deadbeef"

#: Keys the trace_event spec requires on every traceEvents entry.
TRACE_KEYS = ("ph", "ts", "pid", "tid")


def usable_cpus() -> int:
    return len(os.sched_getaffinity(0))


def profile_record(count, spans=(), stack=("mod:fn",), worker=None,
                   cell=None, hz=97.0):
    record = {"kind": "profile", "hz": hz, "count": count,
              "spans": list(spans), "stack": list(stack), "run": RUN}
    if worker is not None:
        record["worker"] = worker
    if cell is not None:
        record["cell"] = cell
    return record


def write_profile(path, records, torn_tail=False):
    path.parent.mkdir(parents=True, exist_ok=True)
    text = "".join(
        json.dumps(r, sort_keys=True) + "\n" for r in records
    )
    if torn_tail:
        text += '{"kind": "profile", "count": 999, "stack": ["to'
    path.write_text(text)


# ----------------------------------------------------------------------
# Sampler
# ----------------------------------------------------------------------


class TestSamplingProfiler:
    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            SamplingProfiler(Telemetry(), hz=0)

    def test_sample_once_attributes_span_stack_and_cell(self, tmp_path):
        telemetry = Telemetry(tmp_path)
        profiler = SamplingProfiler(telemetry, hz=10.0)
        ident = threading.get_ident()
        with telemetry.cell_scope("c-1"):
            with telemetry.span("runner.prepare"):
                with telemetry.span("hierarchy.run"):
                    counted = profiler.sample_once(
                        {ident: ("mod:a", "mod:b")}
                    )
        assert counted == 1
        delta, drained = profiler.drain()
        assert drained == 1
        key = (("runner.prepare", "hierarchy.run"), "c-1",
               ("mod:a", "mod:b"))
        assert delta == {key: 1}
        telemetry.close()

    def test_exited_spans_leave_the_attribution(self, tmp_path):
        telemetry = Telemetry(tmp_path)
        profiler = SamplingProfiler(telemetry, hz=10.0)
        ident = threading.get_ident()
        with telemetry.span("runner.prepare"):
            pass
        profiler.sample_once({ident: ("mod:a",)})
        delta, _ = profiler.drain()
        assert list(delta) == [((), None, ("mod:a",))]
        telemetry.close()

    def test_ignored_and_empty_stacks_are_skipped(self):
        telemetry = Telemetry()
        profiler = SamplingProfiler(telemetry, hz=10.0)
        profiler._ignore.add(7)
        counted = profiler.sample_once({7: ("mod:a",), 8: ()})
        assert counted == 0
        assert profiler.samples == 0

    def test_drain_pops_counts_and_samples_accumulate(self):
        telemetry = Telemetry()
        profiler = SamplingProfiler(telemetry, hz=10.0)
        for _ in range(3):
            profiler.sample_once({1: ("mod:a",)})
        delta, drained = profiler.drain()
        assert drained == 3
        assert delta[((), None, ("mod:a",))] == 3
        assert profiler.drain() == ({}, 0)  # popped, not re-read
        assert profiler.samples == 3  # lifetime total survives drains

    def test_background_thread_samples_real_stacks(self, tmp_path):
        telemetry = Telemetry(tmp_path)
        done = threading.Event()

        def busy():
            while not done.is_set():
                sum(range(500))

        worker = threading.Thread(target=busy, daemon=True)
        worker.start()
        profiler = SamplingProfiler(telemetry, hz=200.0)
        profiler.start()
        try:
            deadline = 100
            while profiler.samples == 0 and deadline:
                threading.Event().wait(0.02)
                deadline -= 1
        finally:
            profiler.stop()
            done.set()
            worker.join()
            telemetry.close()
        assert profiler.samples > 0
        delta, _ = profiler.drain()
        frames = {f for (_, _, stack) in delta for f in stack}
        assert any("test_telemetry_profiling" in f for f in frames)

    def test_frame_label_anchors_on_package(self):
        class Code:
            co_filename = "/root/repo/src/repro/cache/hierarchy.py"
            co_name = "run"

        assert frame_label(Code()) == "repro.cache.hierarchy:run"


# ----------------------------------------------------------------------
# Memory watermarks
# ----------------------------------------------------------------------


class FakeTracer:
    """tracemalloc stand-in with a scriptable (current, peak) series."""

    def __init__(self):
        self.current = 0
        self.peak = 0
        self.tracing = False

    def is_tracing(self):
        return self.tracing

    def start(self):
        self.tracing = True

    def stop(self):
        self.tracing = False

    def get_traced_memory(self):
        return self.current, self.peak

    def reset_peak(self):
        self.peak = self.current

    def set(self, current, peak):
        self.current, self.peak = current, peak


class TestMemoryTracker:
    def test_inclusive_peaks_across_nested_phases(self):
        tracer = FakeTracer()
        tracker = MemoryTracker(tracer=tracer)
        tracker.start()
        tracker.enter("span", "outer")
        tracer.set(100, 150)
        tracker.enter("span", "inner")
        tracer.set(120, 500)  # the spike lands while both are open
        tracker.exit("span", "inner")
        tracer.set(90, 130)
        tracker.exit("span", "outer")
        tracker.close()
        by_name = {r.name: r for r in tracker.records}
        assert by_name["inner"].peak_bytes == 500
        assert by_name["outer"].peak_bytes == 500  # inclusive of child
        assert by_name["inner"].enter_bytes == 100
        assert by_name["outer"].exit_bytes == 90
        assert not tracer.tracing  # owned tracer stopped on close

    def test_close_flushes_still_open_phases(self):
        tracer = FakeTracer()
        tracker = MemoryTracker(tracer=tracer)
        tracker.start()
        tracker.enter("cell", "c-1")
        tracer.set(40, 80)
        tracker.close()
        assert [r.name for r in tracker.records] == ["c-1"]
        assert tracker.records[0].peak_bytes == 80

    def test_foreign_tracer_is_left_running(self):
        tracer = FakeTracer()
        tracer.start()  # someone else already traces
        tracker = MemoryTracker(tracer=tracer)
        tracker.start()
        tracker.close()
        assert tracer.tracing

    def test_csv_roundtrip(self, tmp_path):
        tracer = FakeTracer()
        tracker = MemoryTracker(tracer=tracer)
        tracker.start()
        tracker.enter("span", "s")
        tracer.set(10, 20)
        tracker.exit("span", "s")
        path = write_memory_csv(tracker.records, tmp_path / MEMORY_FILE)
        assert read_memory_csv(path) == tracker.records


# ----------------------------------------------------------------------
# Profile records: merge, fold, shares, hotspots
# ----------------------------------------------------------------------


class TestProfileRecords:
    def test_read_profile_missing_file_and_torn_tail(self, tmp_path):
        assert read_profile(tmp_path / PROFILE_FILE) == []
        write_profile(
            tmp_path / PROFILE_FILE,
            [profile_record(3), profile_record(2)],
            torn_tail=True,
        )
        records = read_profile(tmp_path / PROFILE_FILE)
        assert total_samples(records) == 5  # torn line dropped

    def test_merge_conserves_per_worker_counts(self):
        records = [
            profile_record(3, worker="worker-0"),
            profile_record(2, worker="worker-0"),
            profile_record(4, worker="worker-1"),
        ]
        merged = merge_records(records)
        assert len(merged) == 2  # same attribution within a worker sums
        assert total_samples(merged) == 9
        assert merge_records(merged) == merged  # idempotent re-merge

    def test_merge_keeps_distinct_attributions_apart(self):
        records = [
            profile_record(1, spans=("a",)),
            profile_record(1, spans=("b",)),
            profile_record(1, cell="c-1"),
        ]
        assert len(merge_records(records)) == 3

    def test_folded_flame_format(self, tmp_path):
        records = [
            profile_record(7, spans=("runner.prepare",),
                           stack=("mod:a", "mod:b")),
            profile_record(3, stack=("mod:c",)),
        ]
        text = render_flame(records)
        lines = text.strip().splitlines()
        assert "mod:c 3" in lines
        assert "runner.prepare;mod:a;mod:b 7" in lines
        path = write_flame(records, tmp_path / FLAME_FILE)
        assert path.read_text() == text
        assert fold_records(records)[("mod:c",)] == 3

    def test_function_shares_are_inclusive_once_per_sample(self):
        records = [
            profile_record(8, stack=("mod:a", "mod:b", "mod:a")),
            profile_record(2, stack=("mod:b",)),
        ]
        shares = function_shares(records)
        assert shares["mod:a"] == pytest.approx(0.8)  # recursion once
        assert shares["mod:b"] == pytest.approx(1.0)
        assert function_shares([]) == {}

    def test_hotspot_digests_group_by_innermost_span(self):
        records = [
            profile_record(6, spans=("outer", "inner"),
                           stack=("mod:hot",)),
            profile_record(2, spans=("outer", "inner"),
                           stack=("mod:cold",)),
            profile_record(1, stack=("mod:free",)),
        ]
        digests = hotspot_digests(records, top=1)
        assert digests[0].stage == "inner"
        assert digests[0].function == "mod:hot"
        assert digests[0].samples == 6
        assert digests[0].share == pytest.approx(6 / 8)
        assert digests[-1].stage == NO_STAGE


# ----------------------------------------------------------------------
# Session lifecycle (deterministic: injected stacks)
# ----------------------------------------------------------------------


class TestProfilingSession:
    def make_session(self, tmp_path, memory=False):
        telemetry = Telemetry(
            tmp_path, run_context=RunContext(RUN, "worker-0")
        )
        profiler = SamplingProfiler(telemetry, hz=50.0)
        session = ProfilingSession(
            telemetry, 50.0, memory=memory, profiler=profiler
        )
        return telemetry, session

    def test_flush_writes_stamped_records_and_counter(self, tmp_path):
        telemetry, session = self.make_session(tmp_path)
        ident = threading.get_ident()
        with telemetry.span("runner.prepare"):
            session.profiler.sample_once({ident: ("mod:a",)})
            session.profiler.sample_once({ident: ("mod:a",)})
        session.flush()
        records = read_profile(tmp_path / PROFILE_FILE)
        assert len(records) == 1
        assert records[0]["count"] == 2
        assert records[0]["spans"] == ["runner.prepare"]
        assert records[0]["run"] == RUN
        assert records[0]["worker"] == "worker-0"
        assert records[0]["hz"] == 50.0
        assert telemetry.registry.counter(
            "repro_profile_samples_total"
        ).value == 2
        session.close()
        telemetry.close()

    def test_flushes_append_deltas_and_close_writes_flame(self, tmp_path):
        telemetry, session = self.make_session(tmp_path)
        ident = threading.get_ident()
        session.profiler.sample_once({ident: ("mod:a",)})
        session.flush()
        session.profiler.sample_once({ident: ("mod:a",)})
        session.close()  # final drain + flame.folded
        records = read_profile(tmp_path / PROFILE_FILE)
        assert [r["count"] for r in records] == [1, 1]  # deltas, not totals
        flame = (tmp_path / FLAME_FILE).read_text()
        assert flame == "mod:a 2\n"  # readers sum the deltas
        telemetry.close()

    def test_memory_csv_written_on_close(self, tmp_path):
        telemetry = Telemetry(tmp_path)
        tracker = MemoryTracker(tracer=FakeTracer())
        session = ProfilingSession(
            telemetry, 50.0,
            profiler=SamplingProfiler(telemetry, hz=50.0),
            memory_tracker=tracker,
        )
        session.start()
        session.on_enter("span", "s")
        tracker._tracer.set(10, 30)
        session.on_exit("span", "s")
        session.close()
        watermarks = read_memory_csv(tmp_path / MEMORY_FILE)
        assert [w.name for w in watermarks] == ["s"]
        assert watermarks[0].peak_bytes == 30
        telemetry.close()

    def test_enable_profiling_is_idempotent_and_emits_event(self, tmp_path):
        telemetry = Telemetry(tmp_path, run_context=RunContext(RUN))
        session = telemetry.enable_profiling(50.0)
        assert telemetry.enable_profiling(999.0) is session
        assert telemetry.profile is session
        assert session.memory is None  # tracemalloc is opt-in
        telemetry.close()
        kinds = [e["kind"] for e in read_jsonl(tmp_path / "events.jsonl")]
        assert "profiling_started" in kinds
        assert "profiling_finished" in kinds


# ----------------------------------------------------------------------
# Event spool fast path
# ----------------------------------------------------------------------


class TestEventSpool:
    def test_events_spool_until_span_boundary(self, tmp_path):
        telemetry = Telemetry(tmp_path, run_context=RunContext(RUN))
        log = tmp_path / "events.jsonl"
        with telemetry.span("outer"):
            telemetry.event("inner_event")
            assert not log.exists() or not read_jsonl(log)
        events = read_jsonl(log)  # top-level span exit drained
        assert [e["kind"] for e in events] == ["inner_event", "span"]
        telemetry.close()

    def test_cell_scope_exit_is_a_drain_point(self, tmp_path):
        telemetry = Telemetry(tmp_path, run_context=RunContext(RUN))
        with telemetry.cell_scope("c-1"):
            telemetry.event("working")
        events = read_jsonl(tmp_path / "events.jsonl")
        assert events and events[0]["cell"] == "c-1"
        telemetry.close()

    def test_full_spool_drains_by_capacity(self, tmp_path):
        telemetry = Telemetry(
            tmp_path, run_context=RunContext(RUN), spool_events=4
        )
        for index in range(5):
            telemetry.event("tick", index=index)
        events = read_jsonl(tmp_path / "events.jsonl")
        assert len(events) == 4  # one full batch out, one still spooled
        telemetry.close()
        assert len(read_jsonl(tmp_path / "events.jsonl")) == 5

    def test_seq_is_assigned_at_enqueue_and_exact(self, tmp_path):
        telemetry = Telemetry(
            tmp_path, run_context=RunContext(RUN, "worker-3")
        )
        for index in range(10):
            telemetry.event("tick", index=index)
        telemetry.flush()
        events = read_jsonl(tmp_path / "events.jsonl")
        assert [e["seq"] for e in events] == list(range(10))
        assert [e["index"] for e in events] == list(range(10))
        assert all(e["run"] == RUN for e in events)
        assert all(e["worker"] == "worker-3" for e in events)
        telemetry.close()

    def test_seq_continues_across_resume_with_spool(self, tmp_path):
        first = Telemetry(tmp_path, run_context=RunContext(RUN))
        first.event(kind="a")
        first.close()
        resumed = Telemetry(tmp_path, run_context=RunContext(RUN))
        resumed.event(kind="b")
        resumed.close()
        seqs = [e["seq"] for e in read_jsonl(tmp_path / "events.jsonl")]
        assert seqs == [0, 1]

    def test_default_spool_is_bounded(self):
        assert DEFAULT_SPOOL_EVENTS >= 1

    def test_spliced_context_lines_parse_identically(self, tmp_path):
        telemetry = Telemetry(
            tmp_path, run_context=RunContext(RUN, "worker-0")
        )
        with telemetry.cell_scope("c-9"):
            telemetry.event("probe", value=1.5, text="a\"b\\c")
        telemetry.close()
        event = read_jsonl(tmp_path / "events.jsonl")[0]
        assert event["run"] == RUN
        assert event["worker"] == "worker-0"
        assert event["cell"] == "c-9"
        assert event["text"] == 'a"b\\c'  # escaping survives the splice


# ----------------------------------------------------------------------
# Registry cardinality guard
# ----------------------------------------------------------------------


class TestCardinalityGuard:
    def test_cap_drops_new_series_and_counts_them(self, caplog):
        registry = MetricsRegistry(max_series=2)
        registry.counter("kept_a").inc()
        registry.counter("kept_b", label="x").inc()
        with caplog.at_level("WARNING", logger="repro.telemetry"):
            dropped_one = registry.counter("dropped_c")
            registry.gauge("dropped_d")
        assert dropped_one is _NULL_INSTRUMENT
        dropped = [
            e for e in registry.snapshot()
            if e["name"] == DROPPED_SERIES_METRIC
        ]
        assert dropped and dropped[0]["value"] == 2.0
        assert len(caplog.records) == 1  # warned once, not per series

    def test_existing_series_survive_the_cap(self):
        registry = MetricsRegistry(max_series=1)
        counter = registry.counter("first")
        counter.inc()
        registry.counter("first").inc()  # same series: not dropped
        assert counter.value == 2.0

    def test_invalid_cap_rejected(self):
        from repro.errors import TelemetryError

        with pytest.raises(TelemetryError):
            MetricsRegistry(max_series=0)


# ----------------------------------------------------------------------
# Observatory: merge conservation, trace schema, report, diff
# ----------------------------------------------------------------------


def make_profiled_run(root):
    """A synthetic run with root + two worker profiles."""
    write_profile(root / PROFILE_FILE, [
        profile_record(5, spans=("sweep",), stack=("mod:loop",),
                       worker="root"),
    ])
    write_profile(root / "worker-0" / PROFILE_FILE, [
        profile_record(10, spans=("sweep.cell",), stack=("mod:sim",)),
        profile_record(4, spans=("sweep.cell",), stack=("mod:sim",)),
    ], torn_tail=True)
    write_profile(root / "worker-1" / PROFILE_FILE, [
        profile_record(6, spans=("sweep.cell",), stack=("mod:other",)),
    ])
    (root / "worker-0" / "events.jsonl").write_text("")
    (root / "worker-1" / "events.jsonl").write_text("")
    return root


class TestObservatory:
    def test_merge_conserves_per_worker_sample_counts(self, tmp_path):
        aggregate = aggregate_run(make_profiled_run(tmp_path))
        assert aggregate.profile_samples() == 25
        assert aggregate.profile_samples_by_worker() == {
            "root": 5, "worker-0": 14, "worker-1": 6,
        }
        # The two identical worker-0 deltas merged into one record.
        w0 = [r for r in aggregate.profiles
              if r.get("worker") == "worker-0"]
        assert len(w0) == 1 and w0[0]["count"] == 14

    def test_write_merged_profile_reaggregates_identically(self, tmp_path):
        aggregate = aggregate_run(make_profiled_run(tmp_path / "run"))
        paths = write_merged(aggregate, tmp_path / "merged")
        assert paths["profile"].name == PROFILE_FILE
        again = aggregate_run(tmp_path / "merged")
        assert again.profile_samples() == 25
        assert (
            again.profile_samples_by_worker()
            == aggregate.profile_samples_by_worker()
        )

    def test_overview_reports_profile_samples(self, tmp_path):
        aggregate = aggregate_run(make_profiled_run(tmp_path))
        overview = render_run_overview(aggregate)
        assert "profile samples: 25" in overview
        assert "worker-0: 14" in overview

    def test_trace_gains_hotspot_track_with_valid_schema(self, tmp_path):
        aggregate = aggregate_run(make_profiled_run(tmp_path))
        trace = chrome_trace(aggregate)
        events = trace["traceEvents"]
        assert all(
            all(key in event for key in TRACE_KEYS) for event in events
        )
        slices = [e for e in events
                  if e.get("tid") == 2 and e["ph"] == "X"]
        assert sum(s["args"]["samples"] for s in slices) == 25
        assert all(s["dur"] >= 1 for s in slices)
        metas = [e for e in events
                 if e["ph"] == "M"
                 and e["args"].get("name") == "sampled hotspots"]
        assert len(metas) == 3  # one per profiled worker
        by_pid_tid = {}
        for entry in slices:  # slices tile, never overlap, per track
            by_pid_tid.setdefault((entry["pid"], entry["tid"]), []).append(
                entry
            )
        for track in by_pid_tid.values():
            cursor = 0
            for entry in sorted(track, key=lambda e: e["ts"]):
                assert entry["ts"] == cursor
                cursor += entry["dur"]
        assert json.loads(json.dumps(trace))  # JSON-serializable

    def test_report_renders_hotspots_section(self, tmp_path):
        make_profiled_run(tmp_path)
        summary = summarize_directory(tmp_path)
        text = render_summary(summary)
        assert "hotspots" in text
        assert "mod:loop" in text

    def test_unprofiled_run_renders_without_hotspots(self, tmp_path):
        (tmp_path / "events.jsonl").write_text("")
        text = render_summary(summarize_directory(tmp_path))
        assert "hotspots" not in text


class TestHotspotDiff:
    def run_with_shares(self, root, hot, cold):
        write_profile(root / PROFILE_FILE, [
            profile_record(hot, stack=("mod:hot",)),
            profile_record(cold, stack=("mod:cold",)),
        ])
        (root / "events.jsonl").write_text("")
        return aggregate_run(root)

    def test_share_shift_past_threshold_regresses(self, tmp_path):
        baseline = self.run_with_shares(tmp_path / "a", 80, 20)
        candidate = self.run_with_shares(tmp_path / "b", 50, 50)
        diff = diff_runs(baseline, candidate)
        hotspots = [e for e in diff.entries if e.kind == "hotspot"]
        assert any(e.regression for e in hotspots)
        assert not diff.ok
        assert "mod:hot" in render_diff(diff)

    def test_shift_inside_threshold_passes(self, tmp_path):
        baseline = self.run_with_shares(tmp_path / "a", 80, 20)
        candidate = self.run_with_shares(tmp_path / "b", 75, 25)
        diff = diff_runs(baseline, candidate)
        assert diff.ok

    def test_gate_only_arms_past_min_samples(self, tmp_path):
        baseline = self.run_with_shares(tmp_path / "a", 8, 2)  # 10 samples
        candidate = self.run_with_shares(tmp_path / "b", 2, 8)
        diff = diff_runs(baseline, candidate)
        assert not [e for e in diff.entries if e.kind == "hotspot"]
        assert diff.ok
        forced = diff_runs(
            baseline, candidate, DiffThresholds(hotspot_min_samples=10)
        )
        assert not forced.ok

    def test_threshold_validation(self):
        from repro.errors import TelemetryError

        with pytest.raises(TelemetryError):
            DiffThresholds(hotspot_share_abs=1.5).validate()
        with pytest.raises(TelemetryError):
            DiffThresholds(hotspot_min_samples=-1).validate()


# ----------------------------------------------------------------------
# Supervised-pool integration
# ----------------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.skipif(
    usable_cpus() < 2,
    reason="profiled parallel sweep needs >= 2 usable CPUs",
)
def test_parallel_profiled_sweep_merges_samples(tmp_path):
    from repro.designs.configs import N_CONFIGS
    from repro.designs.nmm import NMMDesign
    from repro.designs.reference import ReferenceDesign
    from repro.experiments.runner import Runner
    from repro.resilience import Journal, SweepExecutor
    from repro.tech.params import PCM
    from repro.workloads.registry import get_workload

    scale = 1.0 / 8192
    runner = Runner(scale=scale, seed=5,
                    trace_cache_dir=str(tmp_path / "traces"))
    designs = [
        ReferenceDesign(scale=scale, reference=runner.reference),
        NMMDesign(PCM, N_CONFIGS["N6"], scale=scale,
                  reference=runner.reference),
    ]
    telemetry = Telemetry(tmp_path / "telemetry")
    executor = SweepExecutor(
        runner, journal=Journal(tmp_path / "journal.jsonl"),
        telemetry=telemetry, workers=2, profile_hz=400.0,
    )
    result = executor.run(designs, [get_workload("CG")])
    telemetry.close()
    assert result.counts() == {"ok": 2}

    root = tmp_path / "telemetry"
    aggregate = aggregate_run(root)
    assert aggregate.profile_samples() > 0
    # Conservation: the merged per-worker totals equal each worker
    # directory's own profile.jsonl sum.
    per_dir = {}
    for label, directory in observatory.discover_sources(root):
        count = total_samples(read_profile(directory / PROFILE_FILE))
        if count:
            per_dir[label] = count
    assert aggregate.profile_samples_by_worker() == per_dir
    assert sum(per_dir.values()) == aggregate.profile_samples()
    # Both workers were sampled and wrote their own flame files.
    for worker in ("worker-0", "worker-1"):
        if per_dir.get(worker):
            assert (root / worker / FLAME_FILE).exists()

"""CacheConfig validation and scaling tests."""

import pytest

from repro.cache.config import CacheConfig, supports_setpar, with_engine
from repro.errors import ConfigError
from repro.units import KiB, MiB


class TestValidation:
    def test_valid_config(self):
        cfg = CacheConfig("L1", 32 * KiB, 8, 64)
        assert cfg.num_sets == 64
        assert cfg.num_blocks == 512

    def test_sandy_bridge_l3_20way(self):
        cfg = CacheConfig("L3", 20 * MiB, 20, 64)
        assert cfg.num_sets == 16384  # power of two by design

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig("X", 0, 8, 64)

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig("X", 32 * KiB, 8, 48)

    def test_capacity_not_divisible_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig("X", 1000, 8, 64)

    def test_non_power_of_two_sets_rejected(self):
        # 3 sets: capacity = 3 * 8 * 64.
        with pytest.raises(ConfigError):
            CacheConfig("X", 3 * 8 * 64, 8, 64)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig("X", 32 * KiB, 8, 64, policy="plru")

    def test_sector_larger_than_block_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig("X", 32 * KiB, 8, 64, sector_size=128)

    def test_sector_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig("X", 32 * KiB, 8, 1024, sector_size=96)

    def test_valid_sectored_config(self):
        cfg = CacheConfig("P", 1 * MiB, 8, 4096, sector_size=64)
        assert cfg.sector_size == 64


class TestScaling:
    def test_scale_by_quarter(self):
        cfg = CacheConfig("L1", 32 * KiB, 8, 64).scaled(0.25)
        assert cfg.capacity == 8 * KiB
        assert cfg.associativity == 8
        assert cfg.block_size == 64

    def test_scale_never_below_one_set(self):
        cfg = CacheConfig("L1", 32 * KiB, 8, 64).scaled(1e-9)
        assert cfg.capacity == 8 * 64  # one set

    def test_scaled_config_is_valid(self):
        for scale in (0.5, 0.1, 0.01, 1 / 256, 1 / 4096):
            cfg = CacheConfig("L3", 20 * MiB, 20, 64).scaled(scale)
            assert cfg.num_sets >= 1

    def test_scale_identity(self):
        cfg = CacheConfig("L2", 256 * KiB, 8, 64)
        assert cfg.scaled(1.0).capacity == cfg.capacity

    def test_invalid_factor(self):
        with pytest.raises(ConfigError):
            CacheConfig("L2", 256 * KiB, 8, 64).scaled(0)

    def test_describe(self):
        text = CacheConfig("L3", 20 * MiB, 20, 64).describe()
        assert "L3" in text and "20MB" in text and "20-way" in text


class TestEngineField:
    def test_default_engine_is_auto(self):
        assert CacheConfig("L1", 32 * KiB, 8, 64).engine == "auto"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig("L1", 32 * KiB, 8, 64, engine="simd")

    def test_setpar_on_unsupported_level_rejected(self):
        # Sectored: per-sector dirty state keeps it on the scalar loop.
        with pytest.raises(ConfigError):
            CacheConfig("L4", 256 * KiB, 8, 4096, sector_size=64,
                        engine="setpar")
        # Random victims come from a serial RNG stream.
        with pytest.raises(ConfigError):
            CacheConfig("L1", 32 * KiB, 8, 64, policy="random",
                        engine="setpar")

    def test_setpar_accepts_fifo(self):
        cfg = CacheConfig("L1", 32 * KiB, 8, 64, policy="fifo",
                          engine="setpar")
        assert cfg.engine == "setpar"
        assert supports_setpar(cfg)

    def test_supports_setpar(self):
        assert supports_setpar(CacheConfig("L1", 32 * KiB, 8, 64))
        assert not supports_setpar(
            CacheConfig("L4", 256 * KiB, 8, 4096, sector_size=64)
        )
        assert not supports_setpar(
            CacheConfig("L1", 32 * KiB, 8, 64, policy="random")
        )
        # A sector size equal to the block size is not sectoring.
        assert supports_setpar(
            CacheConfig("L1", 32 * KiB, 8, 64, sector_size=64)
        )

    def test_with_engine_applies_and_downgrades(self):
        plain = CacheConfig("L1", 32 * KiB, 8, 64)
        assert with_engine(plain, "setpar").engine == "setpar"
        assert with_engine(plain, "scalar").engine == "scalar"
        assert with_engine(plain, "auto") is plain
        sectored = CacheConfig("L4", 256 * KiB, 8, 4096, sector_size=64)
        assert with_engine(sectored, "setpar").engine == "auto"
        assert with_engine(sectored, "scalar").engine == "scalar"

    def test_scaled_preserves_engine(self):
        cfg = CacheConfig("L1", 32 * KiB, 8, 64, engine="setpar")
        assert cfg.scaled(0.5).engine == "setpar"

"""Prefetcher tests: insertion semantics, accuracy accounting,
hierarchy compatibility."""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.hierarchy import Hierarchy
from repro.cache.mainmem import MainMemory
from repro.cache.prefetch import PrefetchingCache
from repro.cache.setassoc import SetAssociativeCache
from repro.errors import ConfigError
from repro.trace.events import AccessBatch
from repro.trace.stream import AddressStream
from repro.trace.synthetic import random_stream, sequential_stream
from repro.units import KiB, MiB


def batch(addresses, kinds=0):
    n = len(addresses)
    return AccessBatch.from_lists(
        addresses, 8, [kinds] * n if isinstance(kinds, int) else kinds
    )


def make(degree=1, capacity=4 * KiB):
    cache = SetAssociativeCache(CacheConfig("P", capacity, 4, 64))
    return PrefetchingCache(cache, degree=degree)


class TestInsertBlock:
    def test_installs_block(self):
        cache = SetAssociativeCache(CacheConfig("C", 4 * KiB, 4, 64))
        cache.insert_block(5)
        assert cache.contains(5 * 64)

    def test_no_stats_change(self):
        cache = SetAssociativeCache(CacheConfig("C", 4 * KiB, 4, 64))
        cache.insert_block(5)
        assert cache.stats.accesses == 0
        assert cache.stats.fills == 0

    def test_resident_noop(self):
        cache = SetAssociativeCache(CacheConfig("C", 4 * KiB, 4, 64))
        cache.process(batch([0]))
        assert len(cache.insert_block(0)) == 0

    def test_dirty_victim_writeback(self):
        cache = SetAssociativeCache(CacheConfig("DM", 128, 1, 64))
        cache.process(batch([0], kinds=1))  # dirty block 0 in set 0
        writebacks = cache.insert_block(2)  # set 0 again -> evicts 0
        assert writebacks.addresses.tolist() == [0]
        assert writebacks.is_store.tolist() == [1]

    def test_sectored_dirty_victim(self):
        cache = SetAssociativeCache(
            CacheConfig("S", 2 * KiB, 1, 1024, sector_size=64)
        )
        cache.process(
            AccessBatch.from_lists([0, 128], [64, 64], [1, 1])
        )  # two dirty sectors in page 0 (set 0)
        writebacks = cache.insert_block(2)  # page 2 -> set 0, evicts page 0
        assert sorted(writebacks.addresses.tolist()) == [0, 128]
        assert writebacks.sizes.tolist() == [64, 64]


class TestPrefetching:
    def test_miss_triggers_next_block_prefetch(self):
        pf = make(degree=1)
        out = pf.process(batch([0]))
        # Downstream: demand fill of block 0 + prefetch fill of block 1.
        assert sorted(out.addresses.tolist()) == [0, 64]
        assert pf.prefetch_stats.issued == 1
        assert pf.cache.contains(64)

    def test_degree(self):
        pf = make(degree=3)
        pf.process(batch([0]))
        assert pf.prefetch_stats.issued == 3
        for block in (1, 2, 3):
            assert pf.cache.contains(block * 64)

    def test_sequential_demand_hits_prefetches(self):
        pf = make(degree=2)
        stream = sequential_stream(2000, base=0)
        for chunk in stream.chunks():
            pf.process(chunk)
        # Almost every prefetch is consumed by the sequential sweep.
        assert pf.prefetch_stats.accuracy > 0.8
        # And the demand miss count collapses vs no prefetching.
        plain = SetAssociativeCache(CacheConfig("N", 4 * KiB, 4, 64))
        for chunk in sequential_stream(2000, base=0).chunks():
            plain.process(chunk)
        assert pf.cache.stats.misses < plain.stats.misses

    def test_random_traffic_low_accuracy(self):
        pf = make(degree=1, capacity=1 * KiB)
        stream = random_stream(5000, footprint_bytes=1 * MiB, seed=3)
        for chunk in stream.chunks():
            pf.process(chunk)
        assert pf.prefetch_stats.accuracy < 0.3

    def test_no_prefetch_on_hits(self):
        pf = make(degree=1)
        pf.process(batch([0]))
        issued = pf.prefetch_stats.issued
        pf.process(batch([8]))  # hit in block 0
        assert pf.prefetch_stats.issued == issued

    def test_resident_target_not_refetched(self):
        pf = make(degree=1)
        pf.process(batch([0]))  # prefetches block 1
        pf.process(batch([128]))  # miss block 2, target block 3
        # Block 1 was already resident when block 0 missed again? ensure
        # issued only counts real installs.
        assert pf.prefetch_stats.issued == 2

    def test_works_in_hierarchy(self):
        l1 = SetAssociativeCache(CacheConfig("L1", 1 * KiB, 2, 64))
        l2 = PrefetchingCache(
            SetAssociativeCache(CacheConfig("L2", 8 * KiB, 4, 64)), degree=2
        )
        mem = MainMemory("MEM")
        h = Hierarchy([l1, l2], mem)
        stats = h.run(sequential_stream(5000))
        # Memory sees demand fills + prefetch fills.
        assert mem.stats.loads >= l2.stats.fills
        assert stats.level("L2").accesses > 0

    def test_validation(self):
        cache = SetAssociativeCache(CacheConfig("C", 4 * KiB, 4, 64))
        with pytest.raises(ConfigError):
            PrefetchingCache(cache, degree=0)
        with pytest.raises(ConfigError):
            PrefetchingCache(cache, sub_batch=0)

    def test_reset(self):
        pf = make()
        pf.process(batch([0]))
        pf.reset()
        assert pf.prefetch_stats.issued == 0
        assert pf.cache.stats.accesses == 0

    def test_empty_batch(self):
        pf = make()
        assert len(pf.process(AccessBatch.empty())) == 0

"""Deep-hybrid (6-level) design tests."""

import pytest

from repro.designs.configs import EH_CONFIGS, N_CONFIGS
from repro.designs.deephybrid import DeepHybridDesign
from repro.designs.fourlcnvm import FourLCNVMDesign
from repro.designs.nmm import NMMDesign
from repro.errors import ConfigError
from repro.experiments.runner import Runner
from repro.tech.params import DRAM, EDRAM, HMC, PCM
from repro.units import MiB
from repro.workloads.registry import get_workload

SCALE = 1.0 / 8192


def make(scale=SCALE, reference=None, l4="EH1", dram="N6"):
    return DeepHybridDesign(
        EDRAM, PCM, EH_CONFIGS[l4], N_CONFIGS[dram],
        scale=scale, reference=reference,
    )


class TestConstruction:
    def test_six_levels(self):
        assert make().build().level_names == [
            "L1", "L2", "L3", "L4", "DRAM$", "NVM",
        ]

    def test_bindings_cover_all_levels(self):
        design = make()
        bindings = design.bindings(1 << 30)
        assert set(bindings) == {"L1", "L2", "L3", "L4", "DRAM$", "NVM"}
        assert bindings["L4"].read_ns == EDRAM.read_delay_ns
        assert bindings["DRAM$"].read_ns == DRAM.read_delay_ns
        assert bindings["NVM"].static_w == 0.0

    def test_static_power_includes_both_caches(self):
        design = make()
        bindings = design.bindings(1 << 30)
        assert bindings["L4"].static_w == pytest.approx(
            EDRAM.static_power_w(16 * MiB)
        )
        assert bindings["DRAM$"].static_w == pytest.approx(
            DRAM.static_power_w(512 * MiB)
        )

    def test_granularity_validation(self):
        # DRAM pages must be >= L4 pages: EH6 (2 KB) over N9 (64 B) fails.
        with pytest.raises(ConfigError):
            DeepHybridDesign(
                EDRAM, PCM, EH_CONFIGS["EH6"], N_CONFIGS["N9"], scale=SCALE
            )

    def test_nonvolatile_l4_rejected(self):
        with pytest.raises(ConfigError):
            DeepHybridDesign(
                PCM, PCM, EH_CONFIGS["EH1"], N_CONFIGS["N6"], scale=SCALE
            )

    def test_sim_key_shared_across_techs(self):
        a = DeepHybridDesign(EDRAM, PCM, EH_CONFIGS["EH1"], N_CONFIGS["N6"],
                             scale=SCALE)
        b = DeepHybridDesign(HMC, PCM, EH_CONFIGS["EH1"], N_CONFIGS["N6"],
                             scale=SCALE)
        assert a.sim_key() == b.sim_key()


class TestBehaviour:
    @pytest.fixture(scope="class")
    def runner(self):
        return Runner(scale=SCALE, seed=8)

    def test_evaluates_end_to_end(self, runner):
        design = make(reference=runner.reference)
        ev = runner.evaluate(design, get_workload("CG"))
        assert 0.5 < ev.time_norm < 3.0
        assert ev.energy_j > 0

    def test_l4_filters_dram_cache_traffic(self, runner):
        design = make(reference=runner.reference)
        stats = runner.stats_for(design, get_workload("CG"))
        l4 = stats.level("L4")
        dram_cache = stats.level("DRAM$")
        assert dram_cache.accesses == l4.fills + l4.writebacks
        assert dram_cache.accesses < l4.accesses

    def test_faster_than_fourlcnvm_on_latency(self, runner):
        """Keeping the DRAM cache must soften 4LCNVM's NVM exposure."""
        workload = get_workload("Hashing")
        deep = runner.evaluate(make(reference=runner.reference), workload)
        fourlcnvm = runner.evaluate(
            FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH1"], scale=SCALE,
                            reference=runner.reference),
            workload,
        )
        assert deep.time_norm <= fourlcnvm.time_norm + 0.02

    def test_more_static_power_than_fourlcnvm(self, runner):
        """The price: the retained DRAM cache keeps refreshing."""
        workload = get_workload("CG")
        deep_raw = runner.raw_for(make(reference=runner.reference), workload)
        fourlcnvm_raw = runner.raw_for(
            FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH1"], scale=SCALE,
                            reference=runner.reference),
            workload,
        )
        assert deep_raw.static_power_w > fourlcnvm_raw.static_power_w

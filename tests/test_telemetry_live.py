"""Live observability plane: server endpoints, SSE resume, dashboard."""

from __future__ import annotations

import io
import json
import urllib.error
import urllib.request

import pytest

from repro.errors import TelemetryError
from repro.telemetry.core import Telemetry
from repro.telemetry.exporters import JsonlTailer
from repro.telemetry.live import (
    DirectoryFollower,
    EventCursor,
    ProgressTracker,
    RunIndex,
    TelemetryServer,
    pool_readiness,
    read_journal_progress,
    render_dashboard,
    watch,
)
from repro.telemetry.registry import (
    MetricsRegistry,
    escape_label_value,
    unescape_label_value,
)
from repro.telemetry.report import _parse_prom_line

pytestmark = pytest.mark.telemetry


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def append_events(path, events):
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as handle:
        for event in events:
            handle.write(json.dumps(event) + "\n")


def make_run(tmp_path, run="r1"):
    """A synthetic finished 2-worker run directory."""
    append_events(tmp_path / "events.jsonl", [
        {"kind": "sweep_started", "cells": 4, "designs": 2,
         "workloads": 2, "run": run, "worker": "root", "seq": 0,
         "ts": 10.0},
        {"kind": "worker_spawned", "pool_worker": "worker-0",
         "run": run, "worker": "root", "seq": 1, "ts": 10.1},
        {"kind": "cell_finished", "cell": "a", "design": "REF",
         "workload": "CG", "status": "ok", "duration_s": 2.0,
         "run": run, "worker": "root", "seq": 2, "ts": 12.0},
    ])
    append_events(tmp_path / "worker-0" / "events.jsonl", [
        {"kind": "window", "context": "CG", "window": 0,
         "levels": {"L1": {"accesses": 100, "hit_rate": 0.9,
                           "bytes": 64}},
         "run": run, "worker": "worker-0", "seq": 0, "ts": 11.0},
        {"kind": "cell_finished", "cell": "b", "design": "NMM",
         "workload": "SP", "status": "failed", "duration_s": 1.0,
         "run": run, "worker": "worker-0", "seq": 1, "ts": 13.0},
    ])
    (tmp_path / "metrics.prom").write_text(
        "# TYPE repro_cells counter\nrepro_cells 2\n"
    )
    return tmp_path


def http_get(url, timeout=5.0, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


def sse_read(url, count, timeout=10.0, last_event_id=None):
    """Read ``count`` SSE events; returns (events, last id seen)."""
    headers = {}
    if last_event_id is not None:
        headers["Last-Event-ID"] = last_event_id
    request = urllib.request.Request(url, headers=headers)
    events, last_id = [], None
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        while len(events) < count:
            line = resp.readline().decode().strip()
            if line.startswith("id: "):
                last_id = line[4:]
            elif line.startswith("data: "):
                events.append(json.loads(line[6:]))
    return events, last_id


# ----------------------------------------------------------------------
# EventCursor
# ----------------------------------------------------------------------


class TestEventCursor:
    def test_admits_only_above_watermark(self):
        cursor = EventCursor({"root": 3})
        assert not cursor.admits("root", 2)
        assert not cursor.admits("root", 3)
        assert cursor.admits("root", 4)
        assert cursor.admits("worker-0", 0)

    def test_advance_is_monotone(self):
        cursor = EventCursor()
        cursor.advance("root", 5)
        cursor.advance("root", 2)
        assert cursor.positions == {"root": 5}

    def test_encode_decode_round_trip(self):
        cursor = EventCursor({"worker-0": 7, "root": 41})
        assert cursor.encode() == "root=41,worker-0=7"
        again = EventCursor.decode(cursor.encode())
        assert again.positions == cursor.positions

    def test_decode_tolerates_garbage(self):
        cursor = EventCursor.decode("root=1,,junk,bad=x,=3,ok=2")
        assert cursor.positions == {"root": 1, "ok": 2}

    def test_decode_none_and_empty(self):
        assert EventCursor.decode(None).positions == {}
        assert EventCursor.decode("").positions == {}


# ----------------------------------------------------------------------
# JsonlTailer (satellite: truncation/replacement hardening)
# ----------------------------------------------------------------------


class TestJsonlTailer:
    def test_incremental_polls(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tailer = JsonlTailer(path)
        assert tailer.poll() == []
        append_events(path, [{"a": 1}])
        assert tailer.poll() == [{"a": 1}]
        assert tailer.poll() == []
        append_events(path, [{"a": 2}, {"a": 3}])
        assert tailer.poll() == [{"a": 2}, {"a": 3}]

    def test_torn_tail_held_until_complete(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with open(path, "w") as handle:
            handle.write('{"a": 1}\n{"a": ')
        tailer = JsonlTailer(path)
        assert tailer.poll() == [{"a": 1}]
        with open(path, "a") as handle:
            handle.write('2}\n')
        assert tailer.poll() == [{"a": 2}]

    def test_truncation_reopens_from_start(self, tmp_path):
        path = tmp_path / "events.jsonl"
        append_events(path, [{"a": 1}, {"a": 2}])
        tailer = JsonlTailer(path)
        assert len(tailer.poll()) == 2
        path.write_text('{"b": 1}\n')  # shrunk: same inode, size < pos
        assert tailer.poll() == [{"b": 1}]

    def test_replacement_reopens_from_start(self, tmp_path):
        path = tmp_path / "events.jsonl"
        append_events(path, [{"a": 1}])
        tailer = JsonlTailer(path)
        assert tailer.poll() == [{"a": 1}]
        replacement = tmp_path / "replacement.jsonl"
        # replacement is longer than the original, so only the inode
        # (not a size regression) can reveal the swap
        append_events(replacement, [{"b": 1}, {"b": 2}])
        replacement.replace(path)
        assert tailer.poll() == [{"b": 1}, {"b": 2}]

    def test_skips_non_dict_and_corrupt_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"a": 1}\nnot json\n[1, 2]\n{"a": 2}\n')
        tailer = JsonlTailer(path)
        assert tailer.poll() == [{"a": 1}, {"a": 2}]


class TestEventLogFlush:
    def test_flush_makes_events_visible_to_tailer(self, tmp_path):
        telemetry = Telemetry(tmp_path, spool_events=512)
        tailer = JsonlTailer(tmp_path / "events.jsonl")
        telemetry.event(kind="probe")
        with telemetry.cell_scope("REF/CG"):
            pass
        # the cell boundary drained and flushed the spool
        kinds = [e["kind"] for e in tailer.poll()]
        assert "probe" in kinds
        telemetry.close()


# ----------------------------------------------------------------------
# DirectoryFollower / ProgressTracker / RunIndex
# ----------------------------------------------------------------------


class TestDirectoryFollower:
    def test_follows_root_and_workers(self, tmp_path):
        make_run(tmp_path)
        follower = DirectoryFollower(tmp_path)
        sources = {source for source, _ in follower.poll()}
        assert sources == {"root", "worker-0"}

    def test_discovers_worker_dirs_created_later(self, tmp_path):
        append_events(tmp_path / "events.jsonl", [{"kind": "x", "seq": 0}])
        follower = DirectoryFollower(tmp_path)
        assert len(follower.poll()) == 1
        append_events(tmp_path / "worker-1" / "events.jsonl",
                      [{"kind": "y", "seq": 0}])
        assert [s for s, _ in follower.poll()] == ["worker-1"]

    def test_ignores_non_worker_directories(self, tmp_path):
        append_events(tmp_path / "events.jsonl", [{"kind": "x", "seq": 0}])
        append_events(tmp_path / "merged" / "events.jsonl",
                      [{"kind": "y", "seq": 0}])
        follower = DirectoryFollower(tmp_path)
        assert [s for s, _ in follower.poll()] == ["root"]


class TestProgressTracker:
    def test_counts_and_eta(self, tmp_path):
        make_run(tmp_path)
        index = RunIndex(tmp_path)
        progress = index.progress("r1")
        assert progress["total"] == 4
        assert progress["done"] == 2
        assert progress["by_status"] == {"ok": 1, "failed": 1}
        assert progress["failed"] == 1
        # 2 evaluated cells in 3.0s -> 2 remaining at 1.5s each
        assert progress["eta_s"] == pytest.approx(3.0)
        assert progress["workloads"]["CG"]["done"] == 1
        assert progress["workloads"]["CG"]["total"] == 2
        assert progress["workers"] == {"worker-0": "alive"}
        assert progress["hit_rates"]["L1"] == [0.9]

    def test_reused_cells_priced_free(self):
        tracker = ProgressTracker("r1")
        tracker.consume({"kind": "sweep_started", "cells": 4, "designs": 2})
        tracker.consume({"kind": "sweep_resume", "reused": 2})
        tracker.consume({"kind": "cell_finished", "workload": "CG",
                         "status": "ok", "duration_s": 2.0})
        tracker.consume({"kind": "cell_finished", "workload": "CG",
                         "status": "ok", "duration_s": 0.0,
                         "from_journal": True})
        # 2 remaining, 1 pending reuse -> one evaluation at 2.0s
        assert tracker.eta_s() == pytest.approx(2.0)
        assert tracker.snapshot()["reused"] == 1

    def test_supervision_events_update_liveness(self):
        tracker = ProgressTracker("r1")
        tracker.consume({"kind": "worker_spawned", "pool_worker": "worker-0"})
        tracker.consume({"kind": "worker_died", "pool_worker": "worker-0",
                         "cell": "a"})
        tracker.consume({"kind": "cell_requeued", "cell": "a"})
        tracker.consume({"kind": "worker_respawned",
                         "pool_worker": "worker-0"})
        snapshot = tracker.snapshot()
        assert snapshot["workers"] == {"worker-0": "alive"}
        kinds = [e["kind"] for e in snapshot["supervision"]]
        assert kinds == ["worker_spawned", "worker_died", "cell_requeued",
                        "worker_respawned"]

    def test_unknown_run_bucket(self, tmp_path):
        append_events(tmp_path / "events.jsonl",
                      [{"kind": "span", "seq": 0}])
        index = RunIndex(tmp_path)
        assert index.runs()[0]["run"] == "unidentified"


class TestJournalProgress:
    def test_counts_by_run(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        journal.write_text(
            '{"status": "ok", "run_id": "r1"}\n'
            '{"status": "failed", "run_id": "r1"}\n'
            'torn{\n'
            '{"status": "ok", "run_id": "r2"}\n'
        )
        runs = read_journal_progress(journal)
        assert runs["r1"] == {"entries": 2,
                              "by_status": {"ok": 1, "failed": 1}}
        assert runs["r2"]["entries"] == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert read_journal_progress(tmp_path / "nope.jsonl") == {}

    def test_merged_into_progress(self, tmp_path):
        make_run(tmp_path)
        journal = tmp_path / "campaign.jsonl"
        journal.write_text('{"status": "ok", "run_id": "r1"}\n')
        index = RunIndex(tmp_path, journal=journal)
        assert index.progress("r1")["journal"]["entries"] == 1


# ----------------------------------------------------------------------
# Readiness policy
# ----------------------------------------------------------------------


class TestPoolReadiness:
    def test_no_pool_is_idle_ready(self):
        ready, detail = pool_readiness(None)
        assert ready and detail["state"] == "idle"

    def test_exhausted_flips(self):
        ready, detail = pool_readiness({"exhausted": True, "workers": []})
        assert not ready and detail["state"] == "exhausted"

    def test_all_dead_flips(self):
        snapshot = {"exhausted": False, "workers": [
            {"worker": "worker-0", "alive": False, "beat_age_s": 0.1},
        ]}
        ready, detail = pool_readiness(snapshot)
        assert not ready and detail["state"] == "no_live_workers"

    def test_escalating_worker_flips(self):
        snapshot = {"exhausted": False, "heartbeat_timeout_s": 10.0,
                    "workers": [
                        {"worker": "worker-0", "alive": True,
                         "beat_age_s": 0.1, "stage": "sigterm",
                         "inflight": "cell"},
                    ]}
        ready, detail = pool_readiness(snapshot)
        assert not ready
        assert detail == {"state": "hung", "workers": ["worker-0"]}

    def test_silent_worker_with_cell_flips(self):
        snapshot = {"exhausted": False, "heartbeat_timeout_s": 1.0,
                    "workers": [
                        {"worker": "worker-0", "alive": True,
                         "beat_age_s": 5.0, "stage": None,
                         "inflight": "cell"},
                    ]}
        assert not pool_readiness(snapshot)[0]

    def test_healthy_pool_is_ready(self):
        snapshot = {"exhausted": False, "heartbeat_timeout_s": 10.0,
                    "workers": [
                        {"worker": "worker-0", "alive": True,
                         "beat_age_s": 0.1, "stage": None,
                         "inflight": "cell"},
                        {"worker": "worker-1", "alive": True,
                         "beat_age_s": 0.2, "stage": None,
                         "inflight": None},
                    ]}
        ready, detail = pool_readiness(snapshot)
        assert ready and detail["workers_alive"] == 2

    def test_idle_silent_worker_stays_ready(self):
        # no inflight cell: a long-silent idle worker is not hung
        snapshot = {"exhausted": False, "heartbeat_timeout_s": 1.0,
                    "workers": [
                        {"worker": "worker-0", "alive": True,
                         "beat_age_s": 60.0, "stage": None,
                         "inflight": None},
                    ]}
        assert pool_readiness(snapshot)[0]


# ----------------------------------------------------------------------
# TelemetryServer (detached + live registry)
# ----------------------------------------------------------------------


class TestTelemetryServer:
    def test_endpoints_on_finished_run(self, tmp_path):
        make_run(tmp_path)
        with TelemetryServer(tmp_path) as server:
            status, body = http_get(server.url + "/healthz")
            assert status == 200 and json.loads(body)["status"] == "alive"
            status, body = http_get(server.url + "/readyz")
            assert status == 200 and json.loads(body)["ready"] is True
            status, body = http_get(server.url + "/metrics")
            assert status == 200 and "repro_cells 2" in body
            status, body = http_get(server.url + "/runs")
            runs = json.loads(body)
            assert [r["run"] for r in runs] == ["r1"]
            status, body = http_get(server.url + "/runs/r1/progress")
            assert status == 200 and json.loads(body)["done"] == 2
            status, _ = http_get(server.url + "/runs/zzz/progress")
            assert status == 404
            status, _ = http_get(server.url + "/no/such/route")
            assert status == 404

    def test_metrics_404_without_prom_file(self, tmp_path):
        with TelemetryServer(tmp_path) as server:
            status, _ = http_get(server.url + "/metrics")
            assert status == 404

    def test_live_registry_overrides_disk(self, tmp_path):
        make_run(tmp_path)
        registry = MetricsRegistry()
        registry.counter("repro_live_probe").inc(7)
        server = TelemetryServer(
            tmp_path, registry=registry, extra_labels={"run": "r1"}
        )
        with server:
            status, body = http_get(server.url + "/metrics")
            assert status == 200
            assert 'repro_live_probe{run="r1"} 7' in body
            assert "repro_cells" not in body  # disk file not consulted

    def test_readyz_flips_with_pool_state(self, tmp_path):
        make_run(tmp_path)
        state = {"snapshot": None}
        server = TelemetryServer(
            tmp_path, readiness=lambda: state["snapshot"]
        )
        with server:
            status, _ = http_get(server.url + "/readyz")
            assert status == 200
            state["snapshot"] = {"exhausted": True, "workers": []}
            status, body = http_get(server.url + "/readyz")
            assert status == 503
            assert json.loads(body)["state"] == "exhausted"
            state["snapshot"] = None
            assert http_get(server.url + "/readyz")[0] == 200

    def test_sse_stream_and_resume_exactly_once(self, tmp_path):
        make_run(tmp_path)
        with TelemetryServer(tmp_path) as server:
            events, last_id = sse_read(server.url + "/events", 5)
            seen = {(e["worker"], e["seq"]) for e in events}
            assert len(seen) == 5
            assert last_id is not None
            # disconnect happened; append new events to both sources
            append_events(tmp_path / "events.jsonl", [
                {"kind": "cell_finished", "cell": "c", "workload": "CG",
                 "status": "ok", "duration_s": 1.0, "run": "r1",
                 "worker": "root", "seq": 3, "ts": 14.0},
            ])
            append_events(tmp_path / "worker-0" / "events.jsonl", [
                {"kind": "span", "run": "r1", "worker": "worker-0",
                 "seq": 2, "ts": 14.5},
            ])
            resumed, _ = sse_read(
                server.url + "/events", 2, last_event_id=last_id
            )
            fresh = {(e["worker"], e["seq"]) for e in resumed}
            assert fresh == {("root", 3), ("worker-0", 2)}
            assert not (seen & fresh)  # exactly once across reconnect

    def test_sse_resume_via_query_parameter(self, tmp_path):
        make_run(tmp_path)
        with TelemetryServer(tmp_path) as server:
            _, last_id = sse_read(server.url + "/events", 5)
            append_events(tmp_path / "events.jsonl", [
                {"kind": "probe", "run": "r1", "worker": "root",
                 "seq": 3, "ts": 15.0},
            ])
            resumed, _ = sse_read(
                server.url + f"/events?last_event_id={last_id}", 1
            )
            assert resumed[0]["kind"] == "probe"

    def test_root_index_lists_endpoints(self, tmp_path):
        with TelemetryServer(tmp_path) as server:
            status, body = http_get(server.url + "/")
            assert status == 200
            assert "/events" in json.loads(body)["endpoints"]

    def test_stop_is_idempotent(self, tmp_path):
        server = TelemetryServer(tmp_path).start()
        server.stop()
        server.stop()

    def test_bind_failure_raises_telemetry_error(self, tmp_path):
        with TelemetryServer(tmp_path) as server:
            with pytest.raises(TelemetryError):
                TelemetryServer(tmp_path, port=server.port).start()


# ----------------------------------------------------------------------
# Prometheus label escaping round trip (satellite)
# ----------------------------------------------------------------------


class TestLabelEscaping:
    @pytest.mark.parametrize("value", [
        'plain', 'with "quotes"', 'back\\slash', 'new\nline',
        'all "of\\it"\ntogether', 'trailing\\',
    ])
    def test_round_trip(self, value):
        assert unescape_label_value(escape_label_value(value)) == value

    def test_quoted_cell_key_survives_render_and_parse(self):
        registry = MetricsRegistry()
        registry.counter("repro_probe", cell='REF/"CG"\n\\x').inc(3)
        text = registry.render_prometheus()
        line = next(
            l for l in text.splitlines()
            if l.startswith("repro_probe{")
        )
        parsed = _parse_prom_line(line)
        assert parsed is not None
        name, labels, value = parsed
        assert name == "repro_probe"
        assert labels["cell"] == 'REF/"CG"\n\\x'
        assert value == 3.0


# ----------------------------------------------------------------------
# Dashboard + watch
# ----------------------------------------------------------------------


class TestDashboard:
    def test_waiting_frame(self):
        frame = render_dashboard(None, source="DIR")
        assert "waiting for events" in frame

    def test_full_frame(self, tmp_path):
        make_run(tmp_path)
        progress = RunIndex(tmp_path).progress("r1")
        frame = render_dashboard(
            progress, {"ready": True, "state": "serving"}, source="x"
        )
        assert "2/4" in frame
        assert "CG" in frame and "SP" in frame
        assert "L1" in frame
        assert "worker-0:alive" in frame
        assert "worker_spawned" in frame
        assert "ready" in frame

    def test_not_ready_is_loud(self):
        progress = {"run": "r1", "total": 2, "done": 1,
                    "by_status": {"ok": 1}, "eta_s": 1.0}
        frame = render_dashboard(
            progress, {"ready": False, "state": "exhausted"}
        )
        assert "NOT READY (exhausted)" in frame

    def test_finished_run_reads_done(self, tmp_path):
        progress = {"run": "r1", "total": 2, "done": 2, "finished": True,
                    "by_status": {"ok": 2}, "eta_s": 0.0}
        assert "done" in render_dashboard(progress)

    def test_watch_once_directory(self, tmp_path, capsys):
        make_run(tmp_path)
        out = io.StringIO()
        assert watch(str(tmp_path), once=True, out=out) == 0
        frame = out.getvalue()
        assert "r1" in frame and "2/4" in frame
        assert "\x1b[" not in frame  # --once emits no ANSI codes

    def test_watch_once_url(self, tmp_path):
        make_run(tmp_path)
        with TelemetryServer(tmp_path) as server:
            out = io.StringIO()
            assert watch(server.url, once=True, out=out) == 0
            assert "2/4" in out.getvalue()

    def test_watch_rejects_missing_directory(self, tmp_path):
        with pytest.raises(TelemetryError):
            watch(str(tmp_path / "missing"), once=True, out=io.StringIO())


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------


class TestCli:
    def test_report_json(self, tmp_path, capsys):
        from repro.experiments.cli import main

        make_run(tmp_path)
        assert main(["telemetry", "report", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events_by_kind"]["cell_finished"] == 2
        assert "spans" in payload and "supervision" in payload

    def test_watch_once_cli(self, tmp_path, capsys):
        from repro.experiments.cli import main

        make_run(tmp_path)
        assert main(
            ["telemetry", "watch", str(tmp_path), "--once"]
        ) == 0
        assert "2/4" in capsys.readouterr().out

    def test_sweep_serve_requires_telemetry(self, tmp_path):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit, match="--serve needs --telemetry"):
            main(["--scale", "0.00024", "--workloads", "CG",
                  "sweep", "--designs", "REF", "--serve"])

"""Trace serialization tests."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.io import (
    load_regions,
    load_stream,
    load_trace,
    save_regions,
    save_stream,
    save_trace,
)
from repro.trace.synthetic import random_stream
from repro.trace.tracer import Tracer


class TestStreamRoundtrip:
    def test_bit_exact(self, tmp_path):
        stream = random_stream(
            5000, footprint_bytes=1 << 20, store_fraction=0.3, seed=2
        )
        path = tmp_path / "s.npz"
        save_stream(stream, path)
        loaded = load_stream(path)
        a, b = stream.as_batch(), loaded.as_batch()
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.sizes, b.sizes)
        assert np.array_equal(a.is_store, b.is_store)

    def test_empty_stream(self, tmp_path):
        from repro.trace.stream import AddressStream

        path = tmp_path / "e.npz"
        save_stream(AddressStream(), path)
        assert len(load_stream(path)) == 0

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_stream(tmp_path / "nope.npz")

    def test_bad_version(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, version=np.int64(99), addresses=np.empty(0),
                 sizes=np.empty(0), is_store=np.empty(0))
        with pytest.raises(TraceError):
            load_stream(path)


class TestRegionRoundtrip:
    def test_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.allocate("a", 1024)
        tracer.allocate("b", 2048)
        path = tmp_path / "r.json"
        save_regions(tracer, path)
        regions = load_regions(path)
        assert [r.name for r in regions] == ["a", "b"]
        assert regions[0].base == tracer.regions[0].base
        assert regions[1].size == 2048

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_regions(tmp_path / "nope.json")


class TestPairedTrace:
    def test_save_load_pair(self, tmp_path):
        tracer = Tracer()
        a = tracer.array("data", (256,))
        _ = a[:]
        paths = save_trace(tracer.stream, tracer, tmp_path, "run1")
        assert all(p.exists() for p in paths)
        stream, regions = load_trace(tmp_path, "run1")
        assert len(stream) == 256
        assert regions[0].name == "data"

    def test_creates_directory(self, tmp_path):
        tracer = Tracer()
        tracer.allocate("x", 64)
        save_trace(tracer.stream, tracer, tmp_path / "sub" / "dir", "t")
        assert (tmp_path / "sub" / "dir" / "t.regions.json").exists()

"""Trace serialization tests."""

import numpy as np
import pytest

from repro.errors import TraceError, TraceIntegrityError
from repro.trace.io import (
    checksum_path,
    compute_checksum,
    load_regions,
    load_stream,
    load_trace,
    save_regions,
    save_stream,
    save_trace,
    verify_artifact,
)
from repro.trace.synthetic import random_stream
from repro.trace.tracer import Tracer


class TestStreamRoundtrip:
    def test_bit_exact(self, tmp_path):
        stream = random_stream(
            5000, footprint_bytes=1 << 20, store_fraction=0.3, seed=2
        )
        path = tmp_path / "s.npz"
        save_stream(stream, path)
        loaded = load_stream(path)
        a, b = stream.as_batch(), loaded.as_batch()
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.sizes, b.sizes)
        assert np.array_equal(a.is_store, b.is_store)

    def test_empty_stream(self, tmp_path):
        from repro.trace.stream import AddressStream

        path = tmp_path / "e.npz"
        save_stream(AddressStream(), path)
        assert len(load_stream(path)) == 0

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_stream(tmp_path / "nope.npz")

    def test_bad_version(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, version=np.int64(99), addresses=np.empty(0),
                 sizes=np.empty(0), is_store=np.empty(0))
        with pytest.raises(TraceError):
            load_stream(path)


class TestRegionRoundtrip:
    def test_roundtrip(self, tmp_path):
        tracer = Tracer()
        tracer.allocate("a", 1024)
        tracer.allocate("b", 2048)
        path = tmp_path / "r.json"
        save_regions(tracer, path)
        regions = load_regions(path)
        assert [r.name for r in regions] == ["a", "b"]
        assert regions[0].base == tracer.regions[0].base
        assert regions[1].size == 2048

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_regions(tmp_path / "nope.json")


class TestDirectoryCreation:
    def test_save_stream_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "s.npz"
        save_stream(random_stream(100, footprint_bytes=1 << 12, seed=1), path)
        assert len(load_stream(path)) == 100

    def test_save_regions_creates_parents(self, tmp_path):
        tracer = Tracer()
        tracer.allocate("a", 1024)
        path = tmp_path / "deep" / "nested" / "r.json"
        save_regions(tracer, path)
        assert [r.name for r in load_regions(path)] == ["a"]


class TestIntegrity:
    @pytest.fixture
    def saved(self, tmp_path):
        tracer = Tracer()
        a = tracer.array("data", (512,))
        _ = a[:]
        return save_trace(tracer.stream, tracer, tmp_path, "run")

    @pytest.fixture
    def saved_v1(self, tmp_path):
        tracer = Tracer()
        a = tracer.array("data", (512,))
        _ = a[:]
        return save_trace(tracer.stream, tracer, tmp_path, "run",
                          version=1)

    def test_sidecars_written(self, saved):
        for path in saved:
            sidecar = checksum_path(path)
            assert sidecar.exists()
            assert sidecar.read_text().split()[0] == compute_checksum(path)

    def test_integrity_error_is_trace_error(self):
        assert issubclass(TraceIntegrityError, TraceError)

    def test_truncated_stream_detected(self, saved):
        from repro.resilience import truncate_file

        stream_path, _ = saved
        truncate_file(stream_path, keep_fraction=0.4)
        with pytest.raises(TraceIntegrityError, match=str(stream_path)):
            load_stream(stream_path)

    def test_bitflipped_stream_detected(self, saved):
        # A v2 store verifies chunk digests as data is read; corrupt a
        # byte inside the first chunk's payload (chunks start at the
        # first page boundary) and force the pass.
        stream_path, _ = saved
        data = bytearray(stream_path.read_bytes())
        data[4096 + 10] ^= 0xFF
        stream_path.write_bytes(bytes(data))
        with pytest.raises(TraceIntegrityError, match="re-trace"):
            load_stream(stream_path).verify()

    def test_bitflipped_v1_stream_detected(self, saved_v1):
        from repro.resilience import bitflip_file

        stream_path, _ = saved_v1
        bitflip_file(stream_path, seed=5)
        with pytest.raises(TraceIntegrityError, match="re-trace"):
            load_stream(stream_path)

    def test_truncated_regions_detected(self, saved):
        from repro.resilience import truncate_file

        _, regions_path = saved
        truncate_file(regions_path, keep_fraction=0.5)
        with pytest.raises(TraceIntegrityError, match=str(regions_path)):
            load_regions(regions_path)

    def test_bitflipped_regions_detected(self, saved):
        from repro.resilience import bitflip_file

        _, regions_path = saved
        bitflip_file(regions_path, seed=5)
        with pytest.raises(TraceIntegrityError):
            load_regions(regions_path)

    def test_parse_failure_without_sidecar_still_integrity_error(self, saved):
        # Pre-sidecar artifacts: no checksum to verify, but corruption
        # must still surface as TraceIntegrityError, not zipfile/json.
        from repro.resilience import truncate_file

        stream_path, regions_path = saved
        for path in saved:
            checksum_path(path).unlink()
            truncate_file(path, keep_fraction=0.3)
        with pytest.raises(TraceIntegrityError):
            load_stream(stream_path)
        with pytest.raises(TraceIntegrityError):
            load_regions(regions_path)

    def test_unreadable_sidecar_detected(self, saved_v1):
        stream_path, _ = saved_v1
        checksum_path(stream_path).write_text("")
        with pytest.raises(TraceIntegrityError, match="sidecar"):
            load_stream(stream_path)

    def test_verify_artifact_passes_clean_files(self, saved):
        for path in saved:
            verify_artifact(path)

    def test_verify_artifact_skips_missing_sidecar(self, tmp_path):
        path = tmp_path / "legacy.bin"
        path.write_bytes(b"old artifact")
        verify_artifact(path)  # no sidecar: tolerated

    def test_corrupt_pair_detected_via_load_trace(self, saved, tmp_path):
        data = bytearray(saved[0].read_bytes())
        data[4096 + 10] ^= 0xFF
        saved[0].write_bytes(bytes(data))
        with pytest.raises(TraceIntegrityError):
            load_trace(tmp_path, "run")[0].verify()

    def test_corrupt_v1_pair_detected_via_load_trace(
        self, saved_v1, tmp_path
    ):
        from repro.resilience import bitflip_file

        bitflip_file(saved_v1[0], seed=9)
        with pytest.raises(TraceIntegrityError):
            load_trace(tmp_path, "run")


class TestPairedTrace:
    def test_save_load_pair(self, tmp_path):
        tracer = Tracer()
        a = tracer.array("data", (256,))
        _ = a[:]
        paths = save_trace(tracer.stream, tracer, tmp_path, "run1")
        assert all(p.exists() for p in paths)
        stream, regions = load_trace(tmp_path, "run1")
        assert len(stream) == 256
        assert regions[0].name == "data"

    def test_creates_directory(self, tmp_path):
        tracer = Tracer()
        tracer.allocate("x", 64)
        save_trace(tracer.stream, tracer, tmp_path / "sub" / "dir", "t")
        assert (tmp_path / "sub" / "dir" / "t.regions.json").exists()

"""Exporters: JSONL events, CSV windows, Prometheus text, durability."""

from __future__ import annotations

import io
import os

import pytest

from repro.errors import TelemetryError
from repro.model.evaluate import Evaluation
from repro.resilience import (
    CampaignKill,
    FaultInjector,
    Journal,
    SweepExecutor,
)
from repro.telemetry.core import Telemetry
from repro.telemetry.exporters import (
    JsonlEventLog,
    atomic_write_text,
    read_jsonl,
    read_windows_csv,
    write_prometheus,
    write_windows_csv,
)
from repro.telemetry.progress import ProgressReporter, format_duration
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.windows import WINDOW_FIELDS, WindowRecord

pytestmark = pytest.mark.telemetry


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        assert path.read_text() == "second"

    def test_leaves_no_temp_files(self, tmp_path):
        atomic_write_text(tmp_path / "out.txt", "data")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(path, "x")
        assert path.read_text() == "x"

    def test_failed_replace_preserves_old_file(self, tmp_path, monkeypatch):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "old")

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_text(path, "new")
        monkeypatch.undo()
        assert path.read_text() == "old"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


class TestJsonl:
    def test_append_read_round_trip(self, tmp_path):
        log = JsonlEventLog(tmp_path / "events.jsonl")
        log.append({"kind": "a", "n": 1})
        log.append({"kind": "b", "nested": {"x": [1, 2]}})
        log.close()
        events = read_jsonl(tmp_path / "events.jsonl")
        assert events == [
            {"kind": "a", "n": 1},
            {"kind": "b", "nested": {"x": [1, 2]}},
        ]

    def test_reopen_after_close_appends(self, tmp_path):
        log = JsonlEventLog(tmp_path / "events.jsonl")
        log.append({"n": 1})
        log.close()
        log.append({"n": 2})
        log.close()
        assert [e["n"] for e in read_jsonl(tmp_path / "events.jsonl")] == [1, 2]

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"n": 1}\n{"n": 2}\n{"n": 3, "tru')
        assert [e["n"] for e in read_jsonl(path)] == [1, 2]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"n": 1}\ngarbage\n{"n": 3}\n')
        with pytest.raises(TelemetryError, match="line 2"):
            read_jsonl(path)

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('[1, 2]\n{"n": 1}\n')
        with pytest.raises(TelemetryError, match="not an object"):
            read_jsonl(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"n": 1}\n\n{"n": 2}\n')
        assert [e["n"] for e in read_jsonl(path)] == [1, 2]


def make_records() -> list[WindowRecord]:
    counters = {field: i for i, field in enumerate(WINDOW_FIELDS)}
    return [
        WindowRecord(index=0, start_refs=0, end_refs=100, level="L1",
                     **counters),
        WindowRecord(index=0, start_refs=0, end_refs=100, level="MEM",
                     **{field: 0 for field in WINDOW_FIELDS}),
        WindowRecord(index=1, start_refs=100, end_refs=150, level="L1",
                     **counters),
        WindowRecord(index=1, start_refs=100, end_refs=150, level="MEM",
                     **counters),
    ]


class TestWindowsCsv:
    def test_exact_round_trip(self, tmp_path):
        records = make_records()
        path = write_windows_csv(records, tmp_path / "w.csv")
        assert read_windows_csv(path) == records

    def test_empty_records_round_trip(self, tmp_path):
        path = write_windows_csv([], tmp_path / "w.csv")
        assert read_windows_csv(path) == []

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "w.csv"
        path.write_text("")
        with pytest.raises(TelemetryError, match="empty"):
            read_windows_csv(path)

    def test_wrong_header_raises(self, tmp_path):
        path = tmp_path / "w.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(TelemetryError, match="header"):
            read_windows_csv(path)

    def test_bad_row_raises(self, tmp_path):
        records = make_records()
        path = write_windows_csv(records, tmp_path / "w.csv")
        with open(path, "a") as handle:
            handle.write("not,a,valid,row,x,x,x,x,x,x,x,x,x,x\n")
        with pytest.raises(TelemetryError, match="row"):
            read_windows_csv(path)


class TestPrometheusFile:
    def test_snapshot_matches_registry(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro_cells_total", status="ok").inc(4)
        registry.histogram("repro_seconds", buckets=(1.0,)).observe(0.5)
        path = write_prometheus(registry, tmp_path / "metrics.prom")
        assert path.read_text() == registry.render_prometheus()


# ----------------------------------------------------------------------
# Durability under a mid-campaign kill (the resilience crossover)
# ----------------------------------------------------------------------


def make_evaluation(design, workload):
    return Evaluation(
        design_name=design, workload=workload, time_s=1.0, dynamic_j=2.0,
        static_j=3.0, energy_j=5.0, edp_js=5.0, amat_ns=1.5, time_norm=1.0,
        energy_norm=0.5, dynamic_norm=0.4, static_norm=0.6, edp_norm=0.5,
    )


class FakeDesign:
    def __init__(self, name):
        self.name = name

    def sim_key(self):
        return self.name


class FakeWorkload:
    def __init__(self, name):
        self.name = name


class FakeRunner:
    def __init__(self):
        self.scale = 0.001
        self.seed = 0

    def evaluate(self, design, workload):
        return make_evaluation(design.name, workload.name)


DESIGNS = [FakeDesign("D1"), FakeDesign("D2")]
WORKLOADS = [FakeWorkload("W1"), FakeWorkload("W2")]


@pytest.mark.resilience
class TestKillDurability:
    def test_artifacts_survive_mid_campaign_kill_then_resume(self, tmp_path):
        runner = FakeRunner()
        journal_path = tmp_path / "journal.jsonl"
        telemetry_dir = tmp_path / "telemetry"

        # First attempt dies (SIGKILL-style) on the third cell: no
        # close(), no flush() — only the per-line event log survives.
        injector = FaultInjector().kill_at_call(3)
        telemetry = Telemetry(telemetry_dir)
        executor = SweepExecutor(
            runner, journal=Journal(journal_path), telemetry=telemetry,
            evaluate=injector.wrap(runner.evaluate),
        )
        with pytest.raises(CampaignKill):
            executor.run(DESIGNS, WORKLOADS)

        # The event log is readable despite the abrupt death, and it
        # recorded exactly the two cells that finished.
        events = read_jsonl(telemetry_dir / "events.jsonl")
        finished = [e for e in events if e["kind"] == "cell_finished"]
        assert len(finished) == 2
        assert all(e["status"] == "ok" for e in finished)

        # Resume under fresh telemetry: the two finished cells are
        # reused, the remaining two run, and the metrics snapshot is
        # written atomically at the end.
        out = io.StringIO()
        telemetry2 = Telemetry(telemetry_dir / "resumed")
        executor2 = SweepExecutor(
            runner, journal=Journal(journal_path), telemetry=telemetry2,
            progress=ProgressReporter(4, out=out),
        )
        result = executor2.run(DESIGNS, WORKLOADS)
        telemetry2.close()
        assert result.counts() == {"ok": 4}
        assert sum(1 for o in result.outcomes if o.from_journal) == 2

        lines = out.getvalue().splitlines()
        assert lines[0] == "resume: 2 cell(s) reused from journal, 2 to run"

        # The executor auto-minted a run context for the resumed
        # attempt, so every sample carries its provenance labels.
        run_id = telemetry2.run_context.run_id
        metrics = (telemetry_dir / "resumed" / "metrics.prom").read_text()
        assert (
            f'repro_sweep_cells_total'
            f'{{run="{run_id}",status="ok",worker="root"}} 4' in metrics
        )
        assert (
            f'repro_sweep_cells_reused_total'
            f'{{run="{run_id}",worker="root"}} 2' in metrics
        )
        assert (
            f'repro_sweep_cells_pending'
            f'{{run="{run_id}",worker="root"}} 0' in metrics
        )

        # The resumed attempt's journal lines join back to its run id.
        resumed_entries = Journal(journal_path).entries()[2:]
        assert [entry.run_id for entry in resumed_entries] == [run_id] * 2

    def test_abandoned_cells_reported_in_resume_summary(self, tmp_path):
        runner = FakeRunner()
        journal_path = tmp_path / "journal.jsonl"
        injector = FaultInjector().fail_cell("D1", "W2")
        executor = SweepExecutor(
            runner, journal=Journal(journal_path),
            evaluate=injector.wrap(runner.evaluate),
        )
        executor.run(DESIGNS, WORKLOADS)

        out = io.StringIO()
        executor2 = SweepExecutor(
            runner, journal=Journal(journal_path),
            progress=ProgressReporter(4, out=out),
        )
        result = executor2.run(DESIGNS, WORKLOADS)
        assert result.counts() == {"ok": 4}
        assert out.getvalue().splitlines()[0] == (
            "resume: 3 cell(s) reused from journal, 1 to run, "
            "1 previously abandoned (re-running)"
        )


class TestProgressReporter:
    def test_format_duration(self):
        assert format_duration(0.42) == "0.4s"
        assert format_duration(12.3) == "12s"
        assert format_duration(185) == "3m05s"
        assert format_duration(2 * 3600 + 7 * 60) == "2h07m"
        assert format_duration(-5) == "0.0s"

    def test_eta_excludes_journal_and_skipped_cells(self):
        out = io.StringIO()
        reporter = ProgressReporter(3, out=out)
        reporter.cell_finished("D", "W1", "ok", 0.0, from_journal=True)
        reporter.cell_finished("D", "W2", "skipped", 0.0)
        lines = out.getvalue().splitlines()
        assert "(ETA ?, 1 reused)" in lines[0]  # nothing to extrapolate
        reporter.cell_finished("D", "W3", "ok", 10.0)
        assert "(done, 1 reused)" in out.getvalue().splitlines()[-1]

    def test_eta_resume_prices_pending_reuses_at_zero(self):
        # 6 cells, 4 journalled: after the first fresh 10s cell the
        # naive estimate would charge the 4 pending reuses full price
        # (ETA 50s); the reporter must only price the one fresh cell
        # left (ETA 10s), then count replayed cells separately.
        out = io.StringIO()
        reporter = ProgressReporter(6, out=out)
        reporter.resume_summary(reused=4, to_run=2, abandoned=0)
        reporter.cell_finished("D", "W1", "ok", 10.0)
        assert "(ETA 10s)" in out.getvalue().splitlines()[-1]
        reporter.cell_finished("D", "W2", "ok", 0.0, from_journal=True)
        assert "(ETA 10s, 1 reused)" in out.getvalue().splitlines()[-1]

    def test_eta_resume_all_remaining_reused_is_zero(self):
        # Nothing fresh has run yet, but every remaining cell is a
        # journal replay — the ETA is known to be ~zero, not "?".
        out = io.StringIO()
        reporter = ProgressReporter(3, out=out)
        reporter.resume_summary(reused=3, to_run=0, abandoned=0)
        reporter.cell_finished("D", "W1", "ok", 0.0, from_journal=True)
        assert "(ETA 0.0s, 1 reused)" in out.getvalue().splitlines()[-1]

    def test_eta_extrapolates_mean_cell_time(self):
        out = io.StringIO()
        reporter = ProgressReporter(3, out=out)
        reporter.cell_started("D", "W1")
        reporter.cell_finished("D", "W1", "ok", 10.0)
        last = out.getvalue().splitlines()[-1]
        assert "[1/3] D/W1: ok in 10s (ETA 20s)" == last

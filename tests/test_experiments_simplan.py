"""SimPlan tests: prefix-tree structure and bit-exact shared simulation."""

import dataclasses

import pytest

from repro.cache.config import CacheConfig
from repro.cache.setassoc import SetAssociativeCache
from repro.designs.deephybrid import DeepHybridDesign
from repro.designs.configs import EH_CONFIGS, N_CONFIGS
from repro.designs.fourlc import FourLCDesign
from repro.designs.fourlcnvm import FourLCNVMDesign
from repro.designs.ndm import NDMDesign
from repro.designs.nmm import NMMDesign
from repro.designs.reference import ReferenceDesign
from repro.experiments.runner import Runner
from repro.experiments.simplan import CapturingCache, SimPlan, config_key
from repro.partition.ranges import AddressRange
from repro.tech.params import EDRAM, FERAM, PCM, STTRAM
from repro.trace.events import AccessBatch
from repro.units import KiB
from repro.workloads.registry import get_workload

SCALE = 1.0 / 8192


def all_designs(reference):
    """Every built-in design family, including a shared-L4 cluster."""
    return [
        ReferenceDesign(scale=SCALE, reference=reference),
        NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE, reference=reference),
        FourLCDesign(EDRAM, EH_CONFIGS["EH4"], scale=SCALE,
                     reference=reference),
        FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH4"], scale=SCALE,
                        reference=reference),
        FourLCNVMDesign(EDRAM, STTRAM, EH_CONFIGS["EH4"], scale=SCALE,
                        reference=reference),
        FourLCNVMDesign(EDRAM, FERAM, EH_CONFIGS["EH4"], scale=SCALE,
                        reference=reference),
        DeepHybridDesign(EDRAM, PCM, EH_CONFIGS["EH1"], N_CONFIGS["N6"],
                         scale=SCALE, reference=reference),
        NDMDesign(PCM, [AddressRange(0x1000_0000, 0x2000_0000, "hot")],
                  scale=SCALE, reference=reference),
    ]


class TestConfigKey:
    def test_equal_configs_equal_keys(self):
        a = CacheConfig("L4", 4 * KiB, 4, 64)
        b = CacheConfig("L4", 4 * KiB, 4, 64)
        assert config_key(a) == config_key(b)

    def test_any_field_change_changes_key(self):
        base = CacheConfig("L4", 4 * KiB, 4, 64)
        assert config_key(base) != config_key(CacheConfig("L4", 8 * KiB, 4, 64))
        assert config_key(base) != config_key(
            CacheConfig("L4", 4 * KiB, 4, 64, hashed_sets=True)
        )


class TestCapturingCache:
    def test_captures_emissions_and_flush(self):
        config = CacheConfig("T", 4 * KiB, 4, 64)
        plain = SetAssociativeCache(config)
        capture = CapturingCache(config)
        # Enough conflicting blocks to force evictions and writebacks.
        addrs = [(i * 64) for i in range(512)] * 2
        batch = AccessBatch.from_lists(addrs, 64, [i % 2 for i in range(1024)])
        expect = [plain.process(batch), plain.flush_dirty()]
        got = [capture.process(batch), capture.flush_dirty()]
        for e, g in zip(expect, got):
            assert e.addresses.tolist() == g.addresses.tolist()
            assert e.is_store.tolist() == g.is_store.tolist()
        total = sum(len(e) for e in expect if e is not None)
        assert len(capture.captured) == total
        assert capture.stats.as_dict() == plain.stats.as_dict()


class TestPlanStructure:
    def test_l4_shared_across_4lc_and_4lcnvm(self):
        designs = [
            FourLCDesign(EDRAM, EH_CONFIGS["EH4"], scale=SCALE),
            FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH4"], scale=SCALE),
        ]
        plan = SimPlan(designs)
        assert plan.sim_count == 2
        assert plan.shared_levels == 1
        assert "shared x2" in plan.describe()

    def test_sim_key_dedup_collapses_nvm_techs(self):
        designs = [
            FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH4"], scale=SCALE),
            FourLCNVMDesign(EDRAM, STTRAM, EH_CONFIGS["EH4"], scale=SCALE),
        ]
        plan = SimPlan(designs)
        assert plan.sim_count == 1
        assert plan.shared_levels == 0

    def test_lone_chain_stays_private(self):
        plan = SimPlan([FourLCDesign(EDRAM, EH_CONFIGS["EH4"], scale=SCALE)])
        assert plan.shared_levels == 0
        assert "private x1" in plan.describe()

    def test_different_l4_configs_do_not_share(self):
        designs = [
            FourLCDesign(EDRAM, EH_CONFIGS["EH1"], scale=SCALE),
            FourLCDesign(EDRAM, EH_CONFIGS["EH4"], scale=SCALE),
        ]
        assert SimPlan(designs).shared_levels == 0

    def test_nonstandard_cache_type_runs_direct(self):
        class OddCache(SetAssociativeCache):
            pass

        class OddDesign(FourLCDesign):
            def lower_caches(self):
                return [OddCache(cache.config)
                        for cache in super().lower_caches()]

        designs = [
            OddDesign(EDRAM, EH_CONFIGS["EH4"], scale=SCALE),
            FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH4"], scale=SCALE),
        ]
        plan = SimPlan(designs)
        assert plan.shared_levels == 0  # the odd chain cannot be regrouped
        assert "[direct]" in plan.describe()
        assert plan.sim_count == 2


class TestExactness:
    """Satellite: plan-shared stats must be bit-identical to independent
    full-hierarchy runs, for every built-in design, on >= 2 workloads."""

    @pytest.fixture(scope="class")
    def plain_runner(self):
        # local_factor=0 so even L1 matches a raw Hierarchy run.
        return Runner(scale=SCALE, seed=5, local_factor=0.0)

    @pytest.mark.parametrize("workload_name", ["CG", "SP"])
    def test_plan_matches_full_hierarchy_run(self, plain_runner,
                                             workload_name):
        workload = get_workload(workload_name)
        designs = all_designs(plain_runner.reference)
        plain_runner.simulate_designs(designs, workload)
        trace = plain_runner.prepare(workload)
        for design in designs:
            # The plan must have populated the cache: stats_for below is
            # a lookup, not an independent per-design simulation.
            assert (design.sim_key(), workload.name) in plain_runner._design_stats
            shared = plain_runner.stats_for(design, workload)
            full = design.build().run(trace.result.stream)
            assert shared.references == full.references
            for shared_level, full_level in zip(shared.levels, full.levels):
                assert shared_level.as_dict() == full_level.as_dict(), (
                    f"{design.name}/{workload.name}/{shared_level.name}"
                )

    def test_plan_matches_full_hierarchy_run_with_drain(self):
        runner = Runner(scale=SCALE, seed=5, local_factor=0.0, drain=True)
        workload = get_workload("CG")
        designs = all_designs(runner.reference)
        runner.simulate_designs(designs, workload)
        trace = runner.prepare(workload)
        for design in designs:
            shared = runner.stats_for(design, workload)
            full = design.build().run(trace.result.stream, drain=True)
            for shared_level, full_level in zip(shared.levels, full.levels):
                assert shared_level.as_dict() == full_level.as_dict(), (
                    f"{design.name}/{shared_level.name}"
                )

    def test_plan_matches_per_design_replay(self, tmp_path):
        """With the production local-factor path: batch-simulated stats
        equal an independent runner's per-design stats_for replay."""
        cache_dir = tmp_path / "traces"
        batch = Runner(scale=SCALE, seed=5, trace_cache_dir=cache_dir)
        solo = Runner(scale=SCALE, seed=5, trace_cache_dir=cache_dir)
        workload = get_workload("CG")
        designs = all_designs(batch.reference)
        batch.simulate_designs(designs, workload)
        for design in designs:
            a = batch.stats_for(design, workload)
            b = solo.stats_for(design, workload)
            assert dataclasses.asdict(a) == dataclasses.asdict(b), design.name

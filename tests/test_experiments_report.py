"""Report generator tests."""

import pytest

from repro.experiments.figures import FigureSeries
from repro.experiments.heatmap import HeatMap
from repro.experiments.report import (
    ClaimCheck,
    ReproductionReport,
    check_claims,
    generate_report,
    render_markdown,
)
from repro.experiments.runner import Runner
from repro.workloads.registry import get_workload

SCALE = 1.0 / 8192


def fig(figure, metric, series, categories):
    return FigureSeries(
        figure=figure, title="t", metric=metric,
        categories=categories, series=series,
    )


class TestCheckClaims:
    def test_fig1_claim_positive(self):
        report = ReproductionReport(
            figures={
                "Figure 1": fig(
                    "Figure 1", "time_norm",
                    {"PCM": {"N1": 1.3, "N3": 1.1}}, ["N1", "N3"],
                )
            }
        )
        claims = check_claims(report)
        assert claims[0].holds

    def test_fig1_claim_negative(self):
        report = ReproductionReport(
            figures={
                "Figure 1": fig(
                    "Figure 1", "time_norm",
                    {"PCM": {"N1": 1.0, "N3": 1.2}}, ["N1", "N3"],
                )
            }
        )
        assert not check_claims(report)[0].holds

    def test_fig7_overhead_claim(self):
        report = ReproductionReport(
            figures={
                "Figure 7": fig(
                    "Figure 7", "time_norm",
                    {"PCM": {"CG": 1.2, "BT": 1.5}}, ["CG", "BT"],
                )
            }
        )
        claim = check_claims(report)[0]
        assert claim.holds
        assert "1.200" in claim.detail

    def test_heatmap_claims(self):
        hm9 = HeatMap(
            figure="Figure 9", title="t", metric="time_norm",
            read_factors=[1, 5], write_factors=[1, 5],
            values=[[1.0, 1.05], [1.1, 1.15]],
        )
        hm10 = HeatMap(
            figure="Figure 10", title="t", metric="energy_norm",
            read_factors=[1, 5], write_factors=[1, 5],
            values=[[0.8, 0.9], [0.9, 1.2]],
        )
        report = ReproductionReport(heatmaps={"Figure 9": hm9, "Figure 10": hm10})
        claims = {c.claim: c for c in check_claims(report)}
        assert any("5x read" in c for c in claims)
        assert all(c.holds for c in claims.values())

    def test_empty_report_no_claims(self):
        assert check_claims(ReproductionReport()) == []


class TestRenderMarkdown:
    def test_contains_all_sections(self):
        report = ReproductionReport(
            figures={
                "Figure 1": fig(
                    "Figure 1", "time_norm", {"PCM": {"N1": 1.2}}, ["N1"]
                )
            },
            claims=[ClaimCheck(claim="demo", holds=True, detail="d")],
        )
        text = render_markdown(report, 1 / 256)
        assert "# Reproduction report" in text
        assert "### Table 1" in text
        assert "Figure 1" in text
        assert "Claim scorecard" in text
        assert "✓" in text

    def test_tables_always_present(self):
        text = render_markdown(ReproductionReport(), 1.0)
        for number in (1, 2, 3, 4):
            assert f"### Table {number}" in text


class TestGenerateReport:
    @pytest.mark.slow
    def test_end_to_end_small(self):
        runner = Runner(scale=SCALE, seed=5)
        workloads = [get_workload("CG"), get_workload("Hashing")]
        report = generate_report(runner, workloads, heatmap_factors=(1, 5))
        assert len(report.figures) == 8
        assert len(report.heatmaps) == 2
        assert report.claims
        text = render_markdown(report, SCALE)
        assert text.count("###") >= 14

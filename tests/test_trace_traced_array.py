"""TracedArray tests: address fidelity across indexing forms."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.tracer import Tracer


@pytest.fixture
def tracer():
    return Tracer()


def last_addresses(tracer, n):
    """The last n recorded addresses."""
    return tracer.stream.as_batch().addresses[-n:].tolist()


class TestAddressFidelity:
    def test_scalar_index(self, tracer):
        a = tracer.array("a", (10,), dtype=np.float64)
        _ = a[3]
        assert last_addresses(tracer, 1) == [a.region.base + 3 * 8]

    def test_slice(self, tracer):
        a = tracer.array("a", (10,))
        _ = a[2:5]
        base = a.region.base
        assert last_addresses(tracer, 3) == [base + 16, base + 24, base + 32]

    def test_2d_row(self, tracer):
        a = tracer.array("a", (4, 5))
        _ = a[2, :]
        base = a.region.base
        expected = [base + (2 * 5 + j) * 8 for j in range(5)]
        assert last_addresses(tracer, 5) == expected

    def test_2d_column_strided(self, tracer):
        a = tracer.array("a", (4, 5))
        _ = a[:, 1]
        base = a.region.base
        expected = [base + (i * 5 + 1) * 8 for i in range(4)]
        assert last_addresses(tracer, 4) == expected

    def test_fancy_index_order(self, tracer):
        a = tracer.array("a", (10,))
        idx = np.array([7, 0, 3])
        _ = a[idx]
        base = a.region.base
        assert last_addresses(tracer, 3) == [base + 56, base + 0, base + 24]

    def test_boolean_mask(self, tracer):
        a = tracer.array("a", (4,))
        mask = np.array([True, False, True, False])
        _ = a[mask]
        base = a.region.base
        assert last_addresses(tracer, 2) == [base, base + 16]

    def test_itemsize_respected(self, tracer):
        a = tracer.array("a", (10,), dtype=np.int32)
        _ = a[2]
        assert last_addresses(tracer, 1) == [a.region.base + 2 * 4]


class TestLoadStoreSemantics:
    def test_getitem_records_loads(self, tracer):
        a = tracer.array("a", (4,))
        _ = a[:]
        stats = tracer.stream.stats()
        assert stats.loads == 4 and stats.stores == 0

    def test_setitem_records_stores(self, tracer):
        a = tracer.array("a", (4,))
        a[:] = 1.0
        stats = tracer.stream.stats()
        assert stats.stores == 4 and stats.loads == 0

    def test_setitem_updates_data(self, tracer):
        a = tracer.array("a", (4,))
        a[1] = 42.0
        assert a.data[1] == 42.0

    def test_getitem_returns_values(self, tracer):
        a = tracer.array("a", (4,), fill=7.0)
        assert np.all(a[:] == 7.0)

    def test_accumulate_records_load_then_store(self, tracer):
        a = tracer.array("a", (2,))
        a.accumulate(slice(None), 1.0)
        batch = tracer.stream.as_batch()
        assert batch.is_store.tolist() == [0, 0, 1, 1]
        assert np.all(a.data == 1.0)

    def test_touch_all(self, tracer):
        a = tracer.array("a", (8,))
        a.touch_all(is_store=True)
        stats = tracer.stream.stats()
        assert stats.stores == 8

    def test_untraced_data_access(self, tracer):
        a = tracer.array("a", (4,))
        a.data[0] = 9.0
        assert len(tracer.stream) == 0


class TestConstruction:
    def test_from_data_copies(self, tracer):
        src = np.arange(6.0).reshape(2, 3)
        from repro.trace.traced_array import TracedArray

        a = TracedArray.from_data(tracer, "a", src)
        src[0, 0] = 99.0
        assert a.data[0, 0] == 0.0

    def test_non_contiguous_rejected(self, tracer):
        from repro.trace.traced_array import TracedArray

        region = tracer.allocate("x", 1000)
        arr = np.zeros((10, 10))[:, ::2]  # non-contiguous view
        with pytest.raises(TraceError):
            TracedArray(arr, region, tracer)

    def test_array_too_big_for_region_rejected(self, tracer):
        from repro.trace.traced_array import TracedArray

        region = tracer.allocate("x", 8)
        with pytest.raises(TraceError):
            TracedArray(np.zeros(100), region, tracer)

    def test_shape_dtype_size_surface(self, tracer):
        a = tracer.array("a", (3, 4), dtype=np.int32)
        assert a.shape == (3, 4)
        assert a.dtype == np.int32
        assert a.size == 12
        assert a.itemsize == 4
        assert len(a) == 3

"""Analytical validation tests — the simulator against closed forms."""

from repro.experiments.validate import (
    check_cyclic_sweep,
    check_random_steady_state,
    check_sequential,
    check_strided,
    validate_simulator,
)


class TestAnalyticalValidation:
    def test_sequential_exact(self):
        check = check_sequential()
        assert check.passed, f"{check.name}: {check.expected} vs {check.measured}"
        assert check.measured == 1.0 - 8 / 64  # exactly, for aligned sweeps

    def test_strided_exact_zero(self):
        check = check_strided()
        assert check.measured == 0.0

    def test_cyclic_lru_pathology(self):
        check = check_cyclic_sweep()
        assert check.passed, f"{check.name}: {check.expected} vs {check.measured}"

    def test_random_steady_state(self):
        check = check_random_steady_state()
        assert check.passed, (
            f"{check.name}: expected {check.expected:.4f}, "
            f"measured {check.measured:.4f}"
        )

    def test_validate_all(self):
        checks = validate_simulator()
        assert len(checks) == 4
        failures = [c for c in checks if not c.passed]
        assert not failures, [
            (c.name, c.expected, c.measured) for c in failures
        ]

    def test_error_property(self):
        check = check_sequential()
        assert check.error == abs(check.expected - check.measured)

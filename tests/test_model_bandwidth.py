"""Bandwidth-extension tests."""

import pytest

from repro.cache.stats import HierarchyStats, LevelStats
from repro.errors import ModelError
from repro.model.amat import amat_ns
from repro.model.bandwidth import (
    amat_with_bandwidth_ns,
    bandwidth_demand,
)
from repro.model.bindings import LevelBinding


def stats():
    l1 = LevelStats(
        name="L1", loads=100, load_bits=100 * 64, load_hits=90, load_misses=10
    )
    mem = LevelStats(
        name="MEM", loads=10, load_bits=10 * 512 * 8, load_hits=10
    )
    return HierarchyStats(levels=[l1, mem], references=100)


def bindings():
    return {
        "L1": LevelBinding("L1", 1.0, 1.0, 0.1, 0.1, 0.0),
        "MEM": LevelBinding("MEM", 10.0, 10.0, 10.0, 10.0, 0.0),
    }


class TestAmatWithBandwidth:
    def test_unconstrained_recovers_eq2(self):
        plain = amat_ns(stats(), bindings())
        unconstrained = amat_with_bandwidth_ns(stats(), bindings(), {})
        assert unconstrained == pytest.approx(plain)

    def test_transfer_term_added(self):
        # MEM moves 10 * 512 B at 1 GB/s = 1 ns/B -> 5120 ns extra.
        constrained = amat_with_bandwidth_ns(
            stats(), bindings(), {"MEM": 1.0}
        )
        plain = amat_ns(stats(), bindings())
        assert constrained == pytest.approx(plain + 5120 / 100)

    def test_higher_bandwidth_less_penalty(self):
        slow = amat_with_bandwidth_ns(stats(), bindings(), {"MEM": 1.0})
        fast = amat_with_bandwidth_ns(stats(), bindings(), {"MEM": 100.0})
        assert fast < slow

    def test_default_table_applies(self):
        # Defaults constrain L1 and nothing named MEM.
        value = amat_with_bandwidth_ns(stats(), bindings())
        assert value >= amat_ns(stats(), bindings())

    def test_invalid_bandwidth(self):
        with pytest.raises(ModelError):
            amat_with_bandwidth_ns(stats(), bindings(), {"MEM": -1.0})

    def test_missing_binding(self):
        with pytest.raises(ModelError):
            amat_with_bandwidth_ns(stats(), {"L1": bindings()["L1"]}, {})


class TestBandwidthDemand:
    def test_demand_computation(self):
        # MEM moves 5120 B over 1 s -> 5.12e-6 GB/s.
        reports = bandwidth_demand(stats(), 1.0, {"MEM": 1.0})
        mem = next(r for r in reports if r.level == "MEM")
        assert mem.demanded_gbs == pytest.approx(5120 / 1e9)
        assert mem.utilization == pytest.approx(5120 / 1e9)

    def test_unconstrained_zero_utilization(self):
        reports = bandwidth_demand(stats(), 1.0, {})
        assert all(r.utilization == 0.0 for r in reports)

    def test_invalid_runtime(self):
        with pytest.raises(ModelError):
            bandwidth_demand(stats(), 0.0)

"""Property-based tests for stream transforms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.filters import (
    filter_range,
    interleave_streams,
    loads_only,
    sample_stream,
    split_windows,
    stores_only,
)
from repro.trace.stream import AddressStream


@st.composite
def streams(draw):
    n = draw(st.integers(min_value=0, max_value=400))
    chunk = draw(st.integers(min_value=1, max_value=64))
    addrs = draw(
        st.lists(
            st.integers(min_value=0, max_value=1 << 20),
            min_size=n, max_size=n,
        )
    )
    kinds = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    s = AddressStream(chunk_events=chunk)
    if n:
        s.append(np.array(addrs, dtype=np.uint64), 8,
                 np.array(kinds, dtype=np.uint8))
    return s


@given(streams(), st.integers(min_value=1, max_value=10))
@settings(max_examples=60, deadline=None)
def test_split_windows_is_a_partition(stream, n_windows):
    windows = split_windows(stream, n_windows)
    assert len(windows) == n_windows
    assert sum(len(w) for w in windows) == len(stream)
    if len(stream):
        original = stream.as_batch().addresses
        merged = np.concatenate(
            [w.as_batch().addresses for w in windows if len(w)]
        )
        assert np.array_equal(merged, original)


@given(streams(), st.integers(min_value=1, max_value=17))
@settings(max_examples=60, deadline=None)
def test_sampling_count_and_membership(stream, keep_every):
    sampled = sample_stream(stream, keep_every)
    expected = (len(stream) + keep_every - 1) // keep_every
    assert len(sampled) == expected
    if len(stream):
        original = stream.as_batch().addresses
        picked = sampled.as_batch().addresses
        assert np.array_equal(picked, original[::keep_every])


@given(streams())
@settings(max_examples=60, deadline=None)
def test_kind_filters_partition_the_stream(stream):
    loads = loads_only(stream)
    stores = stores_only(stream)
    assert len(loads) + len(stores) == len(stream)
    assert loads.stats().stores == 0
    assert stores.stats().loads == 0


@given(streams(), st.integers(min_value=0, max_value=1 << 19))
@settings(max_examples=60, deadline=None)
def test_range_filter_partition(stream, start):
    end = start + 4096
    inside = filter_range(stream, start, end)
    outside = filter_range(stream, start, end, invert=True)
    assert len(inside) + len(outside) == len(stream)
    if len(inside):
        addrs = inside.as_batch().addresses
        assert addrs.min() >= start and addrs.max() < end


@given(st.lists(streams(), min_size=1, max_size=4),
       st.integers(min_value=1, max_value=50))
@settings(max_examples=40, deadline=None)
def test_interleave_preserves_events_and_per_stream_order(stream_list, granule):
    mixed = interleave_streams(stream_list, granule=granule)
    assert len(mixed) == sum(len(s) for s in stream_list)
    # Per-stream relative order is preserved: filter the mix back by
    # each source's address multiset is weaker; instead check the first
    # stream's subsequence order via positions of its exact batch.
    if stream_list and len(stream_list[0]):
        first = stream_list[0].as_batch().addresses
        mixed_addrs = mixed.as_batch().addresses.tolist()
        # Walk the mix consuming the first stream's events greedily;
        # all must be found in order (multiset-subsequence check).
        it = iter(mixed_addrs)
        for addr in first.tolist():
            for candidate in it:
                if candidate == addr:
                    break
            else:
                raise AssertionError("first stream's order not preserved")

"""End-to-end integration tests: the full pipeline and cross-module
consistency at test scale."""

import pytest

from repro.designs.configs import EH_CONFIGS, N_CONFIGS
from repro.designs.fourlc import FourLCDesign
from repro.designs.fourlcnvm import FourLCNVMDesign
from repro.designs.nmm import NMMDesign
from repro.designs.reference import ReferenceDesign
from repro.experiments.runner import Runner
from repro.tech.params import DRAM, EDRAM, HMC, PCM
from repro.tech.scaling import scaled_technology
from repro.workloads.registry import get_workload

SCALE = 1.0 / 8192


@pytest.fixture(scope="module")
def runner():
    return Runner(scale=SCALE, seed=11)


@pytest.fixture(scope="module")
def suite():
    # A cross-section: stencil, sparse, graph, table.
    return [get_workload(n) for n in ("BT", "CG", "Graph500", "Hashing")]


class TestPipelineConsistency:
    def test_traffic_conservation_through_levels(self, runner, suite):
        """Arrivals at level i+1 == fills + writebacks emitted by level i."""
        design = NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                           reference=runner.reference)
        for workload in suite:
            stats = runner.stats_for(design, workload)
            for upper, lower in zip(stats.levels[1:-1], stats.levels[2:]):
                # (skip L1: local-factor injection adjusts it)
                assert lower.accesses == upper.fills + upper.writebacks, (
                    workload.name, upper.name, lower.name,
                )

    def test_memory_bits_match_requests(self, runner, suite):
        design = ReferenceDesign(scale=SCALE, reference=runner.reference)
        for workload in suite:
            stats = runner.stats_for(design, workload)
            mem = stats.level("DRAM")
            # Reference memory requests are all 64 B lines.
            assert mem.load_bits == mem.loads * 64 * 8
            assert mem.store_bits == mem.stores * 64 * 8

    def test_dram_as_nvm_recovers_near_baseline(self, runner, suite):
        """NMM with 'NVM := DRAM parameters' differs from the baseline
        only by the extra level's latency, never by more than the
        DRAM$ hit cost."""
        fake_nvm = scaled_technology(DRAM, name="DRAM-as-NVM")
        design = NMMDesign(fake_nvm, N_CONFIGS["N3"], scale=SCALE,
                           reference=runner.reference)
        for workload in suite:
            ev = runner.evaluate(design, workload)
            assert 0.9 < ev.time_norm < 1.6, workload.name

    def test_bigger_dram_cache_never_hurts_hit_rate(self, runner, suite):
        for workload in suite:
            rates = []
            for cfg in ("N1", "N2", "N3"):
                design = NMMDesign(PCM, N_CONFIGS[cfg], scale=SCALE,
                                   reference=runner.reference)
                stats = runner.stats_for(design, workload)
                rates.append(stats.level("DRAM$").hit_rate)
            assert rates[0] <= rates[2] + 0.02, workload.name

    def test_hmc_never_slower_than_edram_l4(self, runner, suite):
        """HMC's 0.18 ns access dominates eDRAM's 4.4 ns with identical
        hit behaviour — a pure model-consistency check."""
        for workload in suite:
            hmc = runner.evaluate(
                FourLCDesign(HMC, EH_CONFIGS["EH1"], scale=SCALE,
                             reference=runner.reference),
                workload,
            )
            edram = runner.evaluate(
                FourLCDesign(EDRAM, EH_CONFIGS["EH1"], scale=SCALE,
                             reference=runner.reference),
                workload,
            )
            assert hmc.time_norm <= edram.time_norm, workload.name

    def test_fourlcnvm_static_power_below_reference(self, runner, suite):
        """Removing DRAM must remove its refresh power."""
        for workload in suite:
            design = FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH1"],
                                     scale=SCALE, reference=runner.reference)
            raw = runner.raw_for(design, workload)
            ref_raw = runner.prepare(workload).ref_raw
            assert raw.static_power_w < ref_raw.static_power_w


class TestPaperHeadlines:
    """The conclusions' quantitative story, at test scale."""

    def test_nmm_saves_energy_at_bounded_time_cost(self, runner, suite):
        design = NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                           reference=runner.reference)
        energy = [runner.evaluate(design, w).energy_norm for w in suite]
        time = [runner.evaluate(design, w).time_norm for w in suite]
        assert sum(energy) / len(energy) < 1.0  # net saving
        assert max(time) < 2.0  # bounded overhead

    def test_combined_design_beats_nmm_and_fourlc_on_energy(self, runner, suite):
        def avg_energy(design):
            return sum(
                runner.evaluate(design, w).energy_norm for w in suite
            ) / len(suite)

        combined = avg_energy(
            FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH1"], scale=SCALE,
                            reference=runner.reference)
        )
        nmm = avg_energy(
            NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                      reference=runner.reference)
        )
        fourlc = avg_energy(
            FourLCDesign(EDRAM, EH_CONFIGS["EH1"], scale=SCALE,
                         reference=runner.reference)
        )
        assert combined < fourlc
        assert combined < nmm * 1.1  # at least competitive with NMM

    def test_evaluations_are_reproducible(self, suite):
        """Same seed, same scale => identical results."""
        a = Runner(scale=SCALE, seed=3)
        b = Runner(scale=SCALE, seed=3)
        w = suite[0]
        design_a = NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                             reference=a.reference)
        design_b = NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                             reference=b.reference)
        ev_a = a.evaluate(design_a, get_workload(w.name))
        ev_b = b.evaluate(design_b, get_workload(w.name))
        assert ev_a.time_norm == ev_b.time_norm
        assert ev_a.energy_j == ev_b.energy_j

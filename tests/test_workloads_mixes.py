"""Multiprogrammed mix tests."""

import numpy as np
import pytest

from repro.designs.configs import N_CONFIGS
from repro.designs.nmm import NMMDesign
from repro.errors import ConfigError
from repro.experiments.runner import Runner
from repro.tech.params import PCM
from repro.workloads.mixes import MixedWorkload
from repro.workloads.registry import get_workload

S = 1.0 / 16384


def mix():
    return MixedWorkload([get_workload("CG"), get_workload("Hashing")])


class TestMixedWorkload:
    def test_metadata_composition(self):
        m = mix()
        assert m.info.footprint_gb == pytest.approx(1.5 + 4.0)
        assert m.info.t_ref_s == 389.6  # max of members
        assert m.name == "CG+Hashing"

    def test_events_are_union_of_members(self):
        m = mix()
        result = m.trace(scale=S, seed=1)
        cg = get_workload("CG").trace(scale=S, seed=1)
        hashing = get_workload("Hashing").trace(scale=S, seed=2)
        assert len(result.stream) == len(cg.stream) + len(hashing.stream)

    def test_address_spaces_disjoint(self):
        result = mix().trace(scale=S, seed=1)
        batch = result.stream.as_batch()
        slot = batch.addresses // np.uint64(1 << 30)
        # Two members -> exactly two distinct slots.
        assert len(np.unique(slot)) == 2

    def test_member_regions_relocated(self):
        result = mix().trace(scale=S, seed=1)
        names = [r.name for r in result.tracer.regions]
        assert any(name.startswith("CG.") for name in names)
        assert any(name.startswith("Hashing.") for name in names)
        # Regions must cover the traced addresses.
        stats = result.stream.stats()
        lo = min(r.base for r in result.tracer.regions)
        hi = max(r.end for r in result.tracer.regions)
        assert lo <= stats.min_address <= stats.max_address < hi

    def test_member_checks_propagated(self):
        result = mix().trace(scale=S, seed=1)
        assert result.checks["members"]["CG"]["converging"]
        assert result.checks["members"]["Hashing"]["correct"]

    def test_validation(self):
        with pytest.raises(ConfigError):
            MixedWorkload([get_workload("CG")])
        with pytest.raises(ConfigError):
            MixedWorkload(
                [get_workload("CG"), get_workload("BT")], granule=0
            )

    def test_full_pipeline(self):
        runner = Runner(scale=S, seed=3)
        design = NMMDesign(PCM, N_CONFIGS["N6"], scale=S,
                           reference=runner.reference)
        ev = runner.evaluate(design, mix())
        assert ev.time_norm > 0
        assert ev.energy_j > 0

    def test_mix_pressure_lowers_hit_rate(self):
        """Sharing the hierarchy must not *increase* the DRAM$ hit rate
        relative to the best single member (capacity is contended)."""
        runner = Runner(scale=S, seed=3)
        design = NMMDesign(PCM, N_CONFIGS["N6"], scale=S,
                           reference=runner.reference)
        mixed_stats = runner.stats_for(design, mix())
        solo_rates = []
        for name in ("CG", "Hashing"):
            solo = runner.stats_for(design, get_workload(name))
            solo_rates.append(solo.level("DRAM$").hit_rate)
        assert (
            mixed_stats.level("DRAM$").hit_rate <= max(solo_rates) + 0.02
        )

"""Property tests: reuse profiles against the exact cache simulator.

The profiler's contract is *exactness* for fully-associative LRU: the
predicted hit count at capacity C must equal the exact simulator's,
access for access, and writeback/residual-dirty counts must match the
exact engine's dirty bookkeeping — on arbitrary streams, sectored or
not. The set-associative conflict model is approximate by design; its
properties (bounds, monotonicity, exact edges) are pinned here too.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.config import CacheConfig
from repro.cache.setassoc import SetAssociativeCache
from repro.errors import TraceIntegrityError
from repro.profile import (
    compute_profile,
    hit_probability,
    load_profile,
    save_profile,
)
from repro.trace.events import AccessBatch
from repro.trace.reuse import (
    COLD_DISTANCE,
    reuse_distances,
    reuse_distances_fenwick,
)
from repro.trace.stream import AddressStream

#: A small address universe makes collisions (reuse) likely.
accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=64 * 64 - 1),
        st.booleans(),
    ),
    min_size=1,
    max_size=400,
)


def make_batch(pairs):
    addrs = np.asarray([a for a, _ in pairs], dtype=np.uint64)
    kinds = np.asarray([int(s) for _, s in pairs], dtype=np.uint8)
    return AccessBatch.from_lists(addrs, 8, kinds)


def exact_counts(batch, capacity_blocks, block=64, sector=None, drain=False):
    """Ground truth from the exact simulator: (hits, writebacks,
    residual-dirty flush volume) for a fully-associative LRU cache."""
    cache = SetAssociativeCache(CacheConfig(
        "ORACLE", capacity_blocks * block, capacity_blocks, block,
        sector_size=sector, engine="scalar",
    ))
    cache.process(batch)
    stats = cache.stats
    hits = stats.load_hits + stats.store_hits
    writebacks = stats.writebacks
    residual = len(cache.flush_dirty())
    return hits, writebacks, residual


class TestFullyAssociativeExactness:
    @given(accesses, st.integers(min_value=1, max_value=80))
    @settings(max_examples=120, deadline=None)
    def test_hit_count_equals_reuse_distance_threshold(self, pairs, cap):
        """The ISSUE's headline property: predicted fully-associative
        LRU hits == (reuse_distances(stream) < C).sum(), cold excluded."""
        batch = make_batch(pairs)
        profile = compute_profile(batch, 64)
        stream = AddressStream.from_batches([batch])
        d = reuse_distances(stream, line_size=64)
        warm_hits = int(np.count_nonzero((d != COLD_DISTANCE) & (d < cap)))
        assert profile.hit_count(cap) == warm_hits

    @given(accesses, st.integers(min_value=1, max_value=80))
    @settings(max_examples=120, deadline=None)
    def test_hits_writebacks_residual_match_exact_simulator(
        self, pairs, cap
    ):
        batch = make_batch(pairs)
        profile = compute_profile(batch, 64)
        hits, writebacks, residual = exact_counts(batch, cap)
        assert profile.hit_count(cap) == hits
        assert profile.writeback_count(cap) == writebacks
        assert profile.residual_dirty(cap) == residual

    @given(accesses, st.integers(min_value=1, max_value=40))
    @settings(max_examples=80, deadline=None)
    def test_sectored_writebacks_match_exact_simulator(self, pairs, cap):
        """Page-granularity allocation, line-granularity dirty state:
        the (g=256, cg=64) profile must reproduce the sectored exact
        engine's writeback and residual counts."""
        batch = make_batch(pairs)
        profile = compute_profile(batch, 256, chain_granularity=64)
        hits, writebacks, residual = exact_counts(
            batch, cap, block=256, sector=64
        )
        assert profile.hit_count(cap) == hits
        assert profile.writeback_count(cap) == writebacks
        assert profile.residual_dirty(cap) == residual

    @given(accesses)
    @settings(max_examples=60, deadline=None)
    def test_vectorized_distances_match_fenwick_oracle(self, pairs):
        stream = AddressStream.from_batches([make_batch(pairs)])
        assert np.array_equal(
            reuse_distances(stream), reuse_distances_fenwick(stream)
        )

    @given(accesses)
    @settings(max_examples=40, deadline=None)
    def test_miss_ratio_curve_monotone(self, pairs):
        profile = compute_profile(make_batch(pairs), 64)
        caps = np.arange(1, 65)
        curve = profile.miss_ratio_curve(caps)
        assert (np.diff(curve) <= 1e-12).all()
        assert (curve >= 0).all() and (curve <= 1).all()


class TestSetAssociativeModel:
    @given(
        st.integers(min_value=1, max_value=64).map(lambda s: 1 << (s % 7)),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_probability_bounds_and_monotonicity(self, num_sets, ways):
        d = np.arange(-1, 200, dtype=np.int64)
        p = hit_probability(d, num_sets, ways)
        assert (p >= 0).all() and (p <= 1).all()
        # Cold accesses never hit.
        assert p[0] == 0.0
        # Deeper stacks can only hurt.
        assert (np.diff(p[1:]) <= 1e-12).all()
        # Fewer intervening blocks than ways always fit.
        warm = p[1 : 1 + ways]
        assert np.allclose(warm, 1.0)

    def test_single_set_is_exact_indicator(self):
        d = np.array([-1, 0, 3, 7, 8, 100], dtype=np.int64)
        p = hit_probability(d, 1, 8)
        assert p.tolist() == [0.0, 1.0, 1.0, 1.0, 0.0, 0.0]

    def test_more_sets_fewer_conflicts(self):
        d = np.full(1, 64, dtype=np.int64)
        p4 = hit_probability(d, 4, 8)[0]
        p16 = hit_probability(d, 16, 8)[0]
        p64 = hit_probability(d, 64, 8)[0]
        assert p4 <= p16 <= p64

    def test_set_associative_error_bounded_on_random_stream(self):
        """The binomial conflict model against the exact engine on a
        hashed 16-set cache: per-stream hit-count error stays within a
        few percent of the references."""
        rng = np.random.default_rng(3)
        n = 30_000
        addrs = (rng.zipf(1.3, size=n) % 4096).astype(np.uint64) * 64
        kinds = (rng.random(n) < 0.3).astype(np.uint8)
        batch = AccessBatch.from_lists(addrs, 8, kinds)
        profile = compute_profile(batch, 64)
        sets, ways = 16, 8
        cache = SetAssociativeCache(CacheConfig(
            "SA", sets * ways * 64, ways, 64, hashed_sets=True,
        ))
        cache.process(batch)
        exact_hits = cache.stats.load_hits + cache.stats.store_hits
        predicted = float(
            hit_probability(profile.distances, sets, ways).sum()
        )
        assert abs(predicted - exact_hits) / n < 0.05


class TestPersistence:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 16, 5000).astype(np.uint64)
        kinds = (rng.random(5000) < 0.4).astype(np.uint8)
        profile = compute_profile(AccessBatch.from_lists(addrs, 8, kinds), 64)
        path = tmp_path / "cg.profile-d0-g64-c64.npz"
        save_profile(profile, path)
        loaded = load_profile(path)
        assert loaded.granularity == profile.granularity
        assert loaded.chain_granularity == profile.chain_granularity
        assert loaded.references == profile.references
        assert loaded.footprint == profile.footprint
        assert np.array_equal(loaded.distances, profile.distances)
        assert np.array_equal(loaded.is_store, profile.is_store)
        assert np.array_equal(loaded.wb_gap, profile.wb_gap)
        assert np.array_equal(loaded.last_store, profile.last_store)

    def test_corruption_detected(self, tmp_path):
        addrs = np.arange(1000, dtype=np.uint64) * 64
        profile = compute_profile(AccessBatch.from_lists(addrs, 8, 0), 64)
        path = tmp_path / "p.npz"
        save_profile(profile, path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(TraceIntegrityError):
            load_profile(path)

"""Set-associative cache engine tests: known-answer behaviours."""

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.setassoc import SetAssociativeCache, check_request_sizes
from repro.errors import SimulationError
from repro.trace.events import AccessBatch
from repro.units import KiB


def batch(addresses, sizes=8, kinds=0):
    return AccessBatch.from_lists(
        list(addresses),
        [sizes] * len(addresses) if np.isscalar(sizes) else sizes,
        [kinds] * len(addresses) if np.isscalar(kinds) else kinds,
    )


class TestHitMissAccounting:
    def test_cold_miss_then_hit(self, small_cache):
        small_cache.process(batch([0]))
        small_cache.process(batch([8]))  # same line
        stats = small_cache.stats
        assert stats.load_misses == 1
        assert stats.load_hits == 1

    def test_sequential_8byte_accesses_one_miss_per_line(self, small_cache):
        small_cache.process(batch(range(0, 1024, 8)))
        stats = small_cache.stats
        assert stats.load_misses == 1024 // 64
        assert stats.load_hits == 128 - 16

    def test_run_collapse_counts_match_naive(self):
        """Processing one event at a time must equal batch processing."""
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 8 * KiB, size=500, dtype=np.uint64)
        kinds = rng.integers(0, 2, size=500)
        one = SetAssociativeCache(CacheConfig("A", 4 * KiB, 4, 64))
        for a, k in zip(addrs, kinds):
            one.process(batch([int(a)], kinds=int(k)))
        many = SetAssociativeCache(CacheConfig("A", 4 * KiB, 4, 64))
        many.process(AccessBatch.from_lists(addrs, 8, kinds))
        assert one.stats.as_dict() == many.stats.as_dict()

    def test_store_miss_attributed_to_store(self, small_cache):
        small_cache.process(batch([0], kinds=1))
        assert small_cache.stats.store_misses == 1
        assert small_cache.stats.load_misses == 0

    def test_capacity_eviction(self):
        # Direct-mapped 2-line cache: two conflicting lines thrash.
        cache = SetAssociativeCache(CacheConfig("DM", 128, 1, 64))
        cache.process(batch([0, 128, 0, 128]))  # both map to set 0
        assert cache.stats.load_misses == 4

    def test_associativity_prevents_thrash(self):
        cache = SetAssociativeCache(CacheConfig("A2", 256, 2, 64))
        cache.process(batch([0, 128, 0, 128]))  # set 0, 2 ways
        assert cache.stats.load_misses == 2
        assert cache.stats.load_hits == 2

    def test_lru_order_within_set(self):
        cache = SetAssociativeCache(CacheConfig("A2", 256, 2, 64))
        cache.process(batch([0, 128, 256]))  # 256 evicts LRU line 0
        cache.process(batch([128]))  # still resident
        assert cache.stats.load_hits == 1
        cache.process(batch([0]))  # was evicted
        assert cache.stats.load_misses == 4


class TestWritebackPropagation:
    def test_clean_eviction_no_writeback(self):
        cache = SetAssociativeCache(CacheConfig("DM", 128, 1, 64))
        out = cache.process(batch([0, 128]))  # 128 evicts clean line 0
        assert out.is_store.tolist() == [0, 0]  # two fills only

    def test_dirty_eviction_emits_writeback(self):
        cache = SetAssociativeCache(CacheConfig("DM", 128, 1, 64))
        out1 = cache.process(batch([0], kinds=1))  # dirty fill
        assert out1.is_store.tolist() == [0]
        out2 = cache.process(batch([128]))  # evicts dirty line 0
        assert out2.addresses.tolist() == [128, 0]
        assert out2.is_store.tolist() == [0, 1]
        assert cache.stats.writebacks == 1

    def test_fill_sizes_are_block_size(self, small_cache):
        out = small_cache.process(batch([0]))
        assert out.sizes.tolist() == [64]

    def test_store_to_resident_line_marks_dirty(self):
        cache = SetAssociativeCache(CacheConfig("DM", 128, 1, 64))
        cache.process(batch([0]))  # clean fill
        cache.process(batch([0], kinds=1))  # store hit -> dirty
        out = cache.process(batch([128]))
        assert 1 in out.is_store.tolist()

    def test_writeback_cleared_after_eviction(self):
        cache = SetAssociativeCache(CacheConfig("DM", 128, 1, 64))
        cache.process(batch([0], kinds=1))
        cache.process(batch([128]))  # writes back line 0
        out = cache.process(batch([0, 128]))  # refill 0 (clean), evict, refill
        # Line 0 is clean now: its eviction must not write back again.
        assert out.is_store.tolist() == [0, 0]


class TestFlushDirty:
    def test_flush_emits_all_dirty(self, small_cache):
        small_cache.process(batch([0, 64, 128], kinds=1))
        flushed = small_cache.flush_dirty()
        assert sorted(flushed.addresses.tolist()) == [0, 64, 128]
        assert all(flushed.is_store)

    def test_flush_idempotent(self, small_cache):
        small_cache.process(batch([0], kinds=1))
        small_cache.flush_dirty()
        assert len(small_cache.flush_dirty()) == 0

    def test_flush_empty(self, small_cache):
        assert len(small_cache.flush_dirty()) == 0


class TestSectoredCache:
    def cache(self):
        # 4 KiB, direct-mapped, 1 KiB pages, 64 B sectors.
        return SetAssociativeCache(
            CacheConfig("P", 4 * KiB, 1, 1024, sector_size=64)
        )

    def test_fill_is_full_page(self):
        cache = self.cache()
        out = cache.process(batch([0]))
        assert out.sizes.tolist() == [1024]

    def test_writeback_only_dirty_sectors(self):
        cache = self.cache()
        cache.process(batch([0, 64], kinds=[1, 1]))  # two dirty sectors
        cache.process(batch([128]))  # clean sector, same page: hit
        out = cache.process(batch([4096]))  # evicts page 0
        writebacks = out.slice(1, len(out))
        assert sorted(writebacks.addresses.tolist()) == [0, 64]
        assert writebacks.sizes.tolist() == [64, 64]
        assert cache.stats.writebacks == 2

    def test_hits_at_page_granularity(self):
        cache = self.cache()
        cache.process(batch([0]))
        cache.process(batch([512]))  # other sector, same page
        assert cache.stats.load_hits == 1

    def test_sectored_flush(self):
        cache = self.cache()
        cache.process(batch([0, 960], kinds=1))
        flushed = cache.flush_dirty()
        assert sorted(flushed.addresses.tolist()) == [0, 960]
        assert flushed.sizes.tolist() == [64, 64]

    def test_is_dirty_per_sector(self):
        cache = self.cache()
        cache.process(batch([64], kinds=1))
        assert cache.is_dirty(64)
        assert not cache.is_dirty(0)  # same page, clean sector


class TestPolicyVariants:
    def test_fifo_cache_runs(self):
        cache = SetAssociativeCache(CacheConfig("F", 256, 2, 64, policy="fifo"))
        cache.process(batch([0, 128, 0, 256, 0]))
        # FIFO: access to 0 does not refresh; 256 evicts 0.
        assert cache.stats.load_misses == 4

    def test_random_cache_total_conservation(self):
        cache = SetAssociativeCache(
            CacheConfig("R", 4 * KiB, 4, 64, policy="random")
        )
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 64 * KiB, 2000, dtype=np.uint64)
        cache.process(AccessBatch.from_lists(addrs, 8, 0))
        stats = cache.stats
        assert stats.load_hits + stats.load_misses == stats.loads == 2000


class TestHelpers:
    def test_contains(self, small_cache):
        small_cache.process(batch([0]))
        assert small_cache.contains(8)
        assert not small_cache.contains(4096)

    def test_resident_blocks(self, small_cache):
        small_cache.process(batch([0, 64, 128]))
        assert small_cache.resident_blocks() == 3

    def test_reset(self, small_cache):
        small_cache.process(batch([0], kinds=1))
        small_cache.reset()
        assert small_cache.stats.accesses == 0
        assert small_cache.resident_blocks() == 0
        assert len(small_cache.flush_dirty()) == 0

    def test_empty_batch(self, small_cache):
        out = small_cache.process(AccessBatch.empty())
        assert len(out) == 0

    def test_check_request_sizes(self):
        good = batch([0], sizes=64)
        check_request_sizes(good, 64, "X")
        with pytest.raises(SimulationError):
            check_request_sizes(batch([0], sizes=128), 64, "X")

    def test_stats_bits_counted(self, small_cache):
        small_cache.process(batch([0, 8], sizes=8, kinds=[0, 1]))
        assert small_cache.stats.load_bits == 64
        assert small_cache.stats.store_bits == 64

"""Reuse-distance and working-set analysis tests."""

import numpy as np

from repro.trace.reuse import (
    COLD_DISTANCE,
    footprint_lines,
    hit_rate_at_capacity,
    reuse_distances,
    working_set_curve,
)
from repro.trace.stream import AddressStream
from repro.trace.synthetic import random_stream, sequential_stream


def stream_of_lines(line_numbers):
    """Stream with one 8 B access at the start of each 64 B line."""
    addrs = np.array(line_numbers, dtype=np.uint64) * np.uint64(64)
    return AddressStream.from_arrays(addrs, 8, 0)


class TestReuseDistances:
    def test_cold_misses(self):
        d = reuse_distances(stream_of_lines([0, 1, 2]))
        assert d.tolist() == [COLD_DISTANCE] * 3

    def test_immediate_reuse(self):
        d = reuse_distances(stream_of_lines([0, 0]))
        assert d.tolist() == [COLD_DISTANCE, 0]

    def test_stack_distance(self):
        # Access 0,1,2 then 0: two distinct lines touched since.
        d = reuse_distances(stream_of_lines([0, 1, 2, 0]))
        assert d[-1] == 2

    def test_same_line_different_offsets(self):
        stream = AddressStream.from_arrays([0, 8, 16], 8, 0)
        d = reuse_distances(stream, line_size=64)
        assert d.tolist() == [COLD_DISTANCE, 0, 0]

    def test_length_matches_stream(self):
        stream = random_stream(500, footprint_bytes=4096, seed=0)
        assert len(reuse_distances(stream)) == 500


class TestHitRatePrediction:
    def test_predicts_fully_associative_lru(self):
        """Reuse CDF at capacity C == hit rate of a C-line LRU cache."""
        d = reuse_distances(stream_of_lines([0, 1, 0, 1, 2, 0, 1, 2]))
        # Capacity 2 lines: accesses with distance < 2 hit.
        expected_hits = np.count_nonzero((d >= 0) & (d < 2))
        assert hit_rate_at_capacity(d, 2) == expected_hits / len(d)

    def test_monotone_in_capacity(self):
        stream = random_stream(2000, footprint_bytes=64 * 1024, seed=1)
        d = reuse_distances(stream)
        rates = [hit_rate_at_capacity(d, c) for c in (4, 16, 64, 256, 1024)]
        assert rates == sorted(rates)

    def test_empty(self):
        assert hit_rate_at_capacity(np.array([], dtype=np.int64), 10) == 0.0


class TestWorkingSet:
    def test_sequential_working_set_grows_linearly(self):
        stream = sequential_stream(4096, access_size=64)  # one line each
        curve = working_set_curve(stream, [16, 64, 256])
        assert curve[16] == 16
        assert curve[64] == 64
        assert curve[256] == 256

    def test_single_line_stream(self):
        stream = stream_of_lines([5] * 100)
        curve = working_set_curve(stream, [10, 50])
        assert curve[10] == 1.0
        assert curve[50] == 1.0

    def test_window_larger_than_stream(self):
        stream = stream_of_lines([0, 1, 2])
        curve = working_set_curve(stream, [100])
        assert curve[100] == 3.0

    def test_invalid_window(self):
        stream = stream_of_lines([0])
        assert working_set_curve(stream, [0])[0] == 0.0


class TestFootprint:
    def test_counts_distinct_lines(self):
        assert footprint_lines(stream_of_lines([0, 1, 1, 2, 0])) == 3

    def test_respects_line_size(self):
        stream = AddressStream.from_arrays([0, 64, 128], 8, 0)
        assert footprint_lines(stream, line_size=256) == 1

"""Address-range algebra tests."""

import pytest

from repro.errors import ConfigError
from repro.partition.ranges import AddressRange, merge_close_ranges, total_span


class TestAddressRange:
    def test_size(self):
        assert AddressRange(10, 20).size == 10

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            AddressRange(10, 10)
        with pytest.raises(ConfigError):
            AddressRange(20, 10)

    def test_contains(self):
        r = AddressRange(10, 20)
        assert r.contains(10) and r.contains(19)
        assert not r.contains(9) and not r.contains(20)

    def test_overlaps(self):
        a = AddressRange(0, 10)
        assert a.overlaps(AddressRange(5, 15))
        assert not a.overlaps(AddressRange(10, 20))  # adjacent, half-open

    def test_gap(self):
        a, b = AddressRange(0, 10), AddressRange(25, 30)
        assert a.gap_to(b) == 15
        assert b.gap_to(a) == 15
        assert a.gap_to(AddressRange(5, 8)) == 0

    def test_merge_covers_both(self):
        merged = AddressRange(0, 10, "a").merge(AddressRange(20, 30, "b"))
        assert (merged.start, merged.end) == (0, 30)
        assert merged.label == "a+b"


class TestMergeCloseRanges:
    def test_merges_within_gap(self):
        out = merge_close_ranges(
            [AddressRange(0, 10), AddressRange(15, 20)], max_gap=5
        )
        assert len(out) == 1
        assert (out[0].start, out[0].end) == (0, 20)

    def test_keeps_far_ranges_apart(self):
        out = merge_close_ranges(
            [AddressRange(0, 10), AddressRange(100, 110)], max_gap=5
        )
        assert len(out) == 2

    def test_unsorted_input(self):
        out = merge_close_ranges(
            [AddressRange(100, 110), AddressRange(0, 10), AddressRange(8, 50)],
            max_gap=0,
        )
        assert [(r.start, r.end) for r in out] == [(0, 50), (100, 110)]

    def test_chain_merging(self):
        ranges = [AddressRange(i * 10, i * 10 + 8) for i in range(5)]
        out = merge_close_ranges(ranges, max_gap=2)
        assert len(out) == 1

    def test_empty(self):
        assert merge_close_ranges([], 10) == []

    def test_negative_gap_rejected(self):
        with pytest.raises(ConfigError):
            merge_close_ranges([AddressRange(0, 1)], -1)


class TestTotalSpan:
    def test_sum(self):
        assert total_span([AddressRange(0, 10), AddressRange(20, 25)]) == 15

    def test_empty(self):
        assert total_span([]) == 0

"""Technology parameter registry tests (Table 1 fidelity)."""

import pytest

from repro.errors import ConfigError
from repro.tech.params import (
    DRAM,
    EDRAM,
    FERAM,
    HMC,
    PCM,
    STTRAM,
    TECHNOLOGIES,
    MemoryTechnology,
    get_technology,
    nvm_technologies,
    volatile_cache_technologies,
)
from repro.units import MiB


class TestTable1Values:
    """The published Table 1 numbers, verbatim."""

    def test_dram(self):
        assert (DRAM.read_delay_ns, DRAM.write_delay_ns) == (10.0, 10.0)
        assert (DRAM.read_energy_pj_per_bit, DRAM.write_energy_pj_per_bit) == (
            10.0,
            10.0,
        )

    def test_pcm(self):
        assert (PCM.read_delay_ns, PCM.write_delay_ns) == (21.0, 100.0)
        assert (PCM.read_energy_pj_per_bit, PCM.write_energy_pj_per_bit) == (
            12.4,
            210.3,
        )

    def test_sttram(self):
        assert (STTRAM.read_delay_ns, STTRAM.write_delay_ns) == (35.0, 35.0)
        assert (STTRAM.read_energy_pj_per_bit, STTRAM.write_energy_pj_per_bit) == (
            58.5,
            67.7,
        )

    def test_feram(self):
        assert (FERAM.read_delay_ns, FERAM.write_delay_ns) == (40.0, 65.0)
        assert (FERAM.read_energy_pj_per_bit, FERAM.write_energy_pj_per_bit) == (
            12.4,
            210.0,
        )

    def test_edram(self):
        assert (EDRAM.read_delay_ns, EDRAM.write_delay_ns) == (4.4, 4.4)
        assert (EDRAM.read_energy_pj_per_bit, EDRAM.write_energy_pj_per_bit) == (
            3.11,
            3.09,
        )

    def test_hmc(self):
        assert (HMC.read_delay_ns, HMC.write_delay_ns) == (0.18, 0.18)
        assert (HMC.read_energy_pj_per_bit, HMC.write_energy_pj_per_bit) == (
            0.48,
            10.48,
        )

    def test_nvm_static_power_is_zero(self):
        for tech in nvm_technologies():
            assert tech.static_mw_per_mb == 0.0
            assert not tech.volatile

    def test_volatile_techs_have_refresh_power(self):
        for tech in (DRAM, EDRAM, HMC):
            assert tech.static_mw_per_mb > 0
            assert tech.volatile


class TestRegistry:
    def test_all_six_registered(self):
        assert len(TECHNOLOGIES) == 6

    def test_lookup_case_insensitive(self):
        assert get_technology("pcm") is PCM
        assert get_technology("PCM") is PCM
        assert get_technology("eDRAM") is EDRAM

    def test_unknown_raises_with_list(self):
        with pytest.raises(KeyError, match="dram"):
            get_technology("mram")

    def test_groupings(self):
        assert nvm_technologies() == [PCM, STTRAM, FERAM]
        assert volatile_cache_technologies() == [EDRAM, HMC]


class TestDerivedProperties:
    def test_asymmetry_ratios(self):
        assert PCM.write_read_latency_ratio == pytest.approx(100 / 21)
        assert STTRAM.write_read_latency_ratio == 1.0
        assert PCM.write_read_energy_ratio == pytest.approx(210.3 / 12.4)

    def test_static_power_scales_with_capacity(self):
        assert DRAM.static_power_w(1024 * MiB) == pytest.approx(
            1024 * DRAM.static_mw_per_mb / 1000
        )
        assert PCM.static_power_w(1024 * MiB) == 0.0

    def test_with_static_density(self):
        modified = PCM.with_static_density(1.0)
        assert modified.static_mw_per_mb == 1.0
        assert PCM.static_mw_per_mb == 0.0  # original untouched

    def test_negative_parameter_rejected(self):
        with pytest.raises(ConfigError):
            MemoryTechnology("X", -1, 1, 1, 1, 0, False)

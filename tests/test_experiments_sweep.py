"""Sweep machinery tests (Pareto logic unit-tested, sweep integrated)."""

import pytest

from repro.designs.configs import N_CONFIGS
from repro.designs.nmm import NMMDesign
from repro.designs.reference import ReferenceDesign
from repro.errors import ConfigError
from repro.experiments.runner import Runner
from repro.experiments.sweep import (
    SweepSummary,
    best_by,
    pareto_frontier,
    run_sweep,
    summarize,
)
from repro.tech.params import PCM, STTRAM
from repro.workloads.registry import get_workload

SCALE = 1.0 / 8192


def summary(design, time, energy):
    return SweepSummary(design=design, time_norm=time, energy_norm=energy,
                        edp_norm=time * energy)


class TestPareto:
    def test_dominated_points_removed(self):
        points = [
            summary("good", 1.0, 1.0),
            summary("dominated", 1.1, 1.1),
        ]
        frontier = pareto_frontier(points)
        assert [s.design for s in frontier] == ["good"]

    def test_tradeoff_points_kept(self):
        points = [
            summary("fast", 1.0, 2.0),
            summary("efficient", 2.0, 1.0),
        ]
        frontier = pareto_frontier(points)
        assert len(frontier) == 2

    def test_sorted_by_time(self):
        points = [
            summary("b", 2.0, 1.0),
            summary("a", 1.0, 2.0),
        ]
        assert [s.design for s in pareto_frontier(points)] == ["a", "b"]

    def test_duplicate_points_both_survive(self):
        points = [summary("x", 1.0, 1.0), summary("y", 1.0, 1.0)]
        assert len(pareto_frontier(points)) == 2

    def test_empty(self):
        assert pareto_frontier([]) == []


class TestBestBy:
    def test_metrics(self):
        points = [summary("a", 1.0, 3.0), summary("b", 3.0, 1.0)]
        assert best_by(points, "time_norm").design == "a"
        assert best_by(points, "energy_norm").design == "b"

    def test_validation(self):
        with pytest.raises(ConfigError):
            best_by([], "edp_norm")
        with pytest.raises(ConfigError):
            best_by([summary("a", 1, 1)], "speed")


class TestRunSweep:
    @pytest.fixture(scope="class")
    def runner(self):
        return Runner(scale=SCALE, seed=2)

    def test_records_and_summaries(self, runner):
        workloads = [get_workload("CG")]
        designs = [
            ReferenceDesign(scale=SCALE, reference=runner.reference),
            NMMDesign(PCM, N_CONFIGS["N6"], scale=SCALE,
                      reference=runner.reference),
            NMMDesign(STTRAM, N_CONFIGS["N6"], scale=SCALE,
                      reference=runner.reference),
        ]
        records = run_sweep(runner, designs, workloads)
        assert len(records) == 3
        summaries = summarize(records)
        assert len(summaries) == 3
        ref = next(s for s in summaries if s.design == "REF")
        assert ref.time_norm == pytest.approx(1.0)
        # The frontier always contains the reference or something that
        # dominates it.
        frontier = pareto_frontier(summaries)
        assert frontier

    def test_empty_workloads_rejected(self, runner):
        with pytest.raises(ConfigError):
            run_sweep(runner, [], [])

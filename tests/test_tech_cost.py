"""Cost-model tests."""

import pytest

from repro.designs.configs import EH_CONFIGS, N_CONFIGS
from repro.designs.fourlc import FourLCDesign
from repro.designs.fourlcnvm import FourLCNVMDesign
from repro.designs.ndm import NDMDesign
from repro.designs.nmm import NMMDesign
from repro.designs.reference import ReferenceDesign
from repro.errors import ModelError
from repro.model.evaluate import Evaluation
from repro.tech.cost import (
    PRICE_PER_GB,
    design_capacities_gb,
    estimate_cost,
    memory_capital_cost,
)
from repro.tech.params import EDRAM, PCM
from repro.units import GiB


def evaluation(energy_j=100.0, time_norm=1.0):
    return Evaluation(
        design_name="D", workload="W", time_s=10.0, dynamic_j=energy_j / 2,
        static_j=energy_j / 2, energy_j=energy_j, edp_js=energy_j * 10,
        amat_ns=2.0, time_norm=time_norm, energy_norm=1.0,
        dynamic_norm=1.0, static_norm=1.0, edp_norm=1.0,
    )


class TestCapitalCost:
    def test_simple(self):
        assert memory_capital_cost({"DRAM": 4.0}) == pytest.approx(
            4.0 * PRICE_PER_GB["DRAM"]
        )

    def test_mixed(self):
        cost = memory_capital_cost({"DRAM": 0.5, "PCM": 4.0})
        assert cost == pytest.approx(0.5 * 8.0 + 4.0 * 4.0)

    def test_case_insensitive(self):
        assert memory_capital_cost({"pcm": 1.0}) == PRICE_PER_GB["PCM"]

    def test_unknown_technology_rejected(self):
        with pytest.raises(ModelError):
            memory_capital_cost({"MRAM9000": 1.0})

    def test_negative_capacity_rejected(self):
        with pytest.raises(ModelError):
            memory_capital_cost({"DRAM": -1.0})

    def test_pcm_cheaper_per_gb_than_dram(self):
        """The premise of the capacity argument."""
        assert PRICE_PER_GB["PCM"] < PRICE_PER_GB["DRAM"]


class TestEstimate:
    def test_components(self):
        est = estimate_cost(
            evaluation(energy_j=3.6e6),  # exactly 1 kWh per run
            {"DRAM": 1.0},
            runs_amortized=10,
            dollars_per_kwh=0.10,
        )
        assert est.capital_dollars == pytest.approx(8.0)
        assert est.energy_dollars == pytest.approx(1.0)
        assert est.total_dollars == pytest.approx(9.0)

    def test_cost_performance_scales_with_time(self):
        fast = estimate_cost(evaluation(time_norm=1.0), {"DRAM": 1.0})
        slow = estimate_cost(evaluation(time_norm=2.0), {"DRAM": 1.0})
        assert slow.cost_performance == pytest.approx(2 * fast.cost_performance)

    def test_validation(self):
        with pytest.raises(ModelError):
            estimate_cost(evaluation(), {"DRAM": 1.0}, runs_amortized=0)


class TestDesignCapacities:
    FOOTPRINT = 4 * GiB

    def test_reference(self):
        caps = design_capacities_gb(ReferenceDesign(), self.FOOTPRINT)
        assert caps == {"DRAM": 4.0}

    def test_nmm_swaps_dram_for_nvm(self):
        design = NMMDesign(PCM, N_CONFIGS["N3"])
        caps = design_capacities_gb(design, self.FOOTPRINT)
        assert caps["DRAM"] == 0.5  # 512 MB cache
        assert caps["PCM"] == 4.0

    def test_nmm_cheaper_capital_than_reference_at_capacity(self):
        """The paper's capacity argument, priced: NVM main memory costs
        less than footprint-sized DRAM."""
        ref = memory_capital_cost(
            design_capacities_gb(ReferenceDesign(), self.FOOTPRINT)
        )
        nmm = memory_capital_cost(
            design_capacities_gb(NMMDesign(PCM, N_CONFIGS["N3"]), self.FOOTPRINT)
        )
        assert nmm < ref

    def test_fourlc(self):
        design = FourLCDesign(EDRAM, EH_CONFIGS["EH1"])
        caps = design_capacities_gb(design, self.FOOTPRINT)
        assert caps["eDRAM"] == pytest.approx(16 / 1024)
        assert caps["DRAM"] == 4.0

    def test_fourlcnvm_has_no_dram(self):
        design = FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH1"])
        caps = design_capacities_gb(design, self.FOOTPRINT)
        assert "DRAM" not in caps

    def test_ndm(self):
        design = NDMDesign(PCM, [])
        caps = design_capacities_gb(design, self.FOOTPRINT)
        assert caps["DRAM"] == 0.5
        assert caps["PCM"] == 4.0

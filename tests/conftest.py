"""Shared fixtures for the test suite.

Tests run at tiny scales (``TINY_SCALE``) so the whole suite stays
fast; the benchmarks exercise the default experiment scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.config import CacheConfig
from repro.cache.mainmem import MainMemory
from repro.cache.setassoc import SetAssociativeCache
from repro.designs.base import ReferenceSystem
from repro.experiments.runner import Runner
from repro.trace.stream import AddressStream
from repro.units import KiB

#: Footprint/capacity scale used throughout the tests.
TINY_SCALE = 1.0 / 4096


@pytest.fixture
def tiny_scale() -> float:
    """Scale factor for fast tests."""
    return TINY_SCALE


@pytest.fixture
def runner() -> Runner:
    """An experiment runner at test scale."""
    return Runner(scale=TINY_SCALE, seed=7)


@pytest.fixture
def small_cache() -> SetAssociativeCache:
    """A 4 KiB, 4-way, 64 B-line LRU cache (16 sets)."""
    return SetAssociativeCache(CacheConfig("T", 4 * KiB, 4, 64))


@pytest.fixture
def memory() -> MainMemory:
    """A fresh terminal memory."""
    return MainMemory("MEM")


@pytest.fixture
def reference_system() -> ReferenceSystem:
    """The Sandy Bridge reference pyramid."""
    return ReferenceSystem.sandy_bridge()


def make_stream(addresses, sizes=8, is_store=0) -> AddressStream:
    """Helper: build a stream from plain lists."""
    return AddressStream.from_arrays(
        np.asarray(addresses, dtype=np.uint64), sizes, is_store
    )

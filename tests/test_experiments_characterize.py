"""Workload characterization tests."""

import pytest

from repro.experiments.characterize import (
    CDF_CAPACITIES,
    characterize,
    render_profiles,
)
from repro.experiments.runner import Runner
from repro.workloads.registry import get_workload

SCALE = 1.0 / 8192


@pytest.fixture(scope="module")
def runner():
    return Runner(scale=SCALE, seed=9)


class TestCharacterize:
    def test_profile_fields(self, runner):
        profile = characterize(runner, get_workload("CG"))
        assert profile.name == "CG"
        assert profile.events > 1000
        assert profile.footprint_mb > 0
        assert 0.0 < profile.store_fraction < 1.0
        assert 0.0 <= profile.page_hit_rate <= 1.0
        assert profile.memory_intensity > 0

    def test_reuse_cdf_monotone_in_capacity(self, runner):
        profile = characterize(runner, get_workload("CG"))
        values = [profile.reuse_cdf[label] for label in CDF_CAPACITIES]
        assert values == sorted(values)
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_streaming_vs_random_signatures_differ(self, runner):
        """Hashing (random table probes) must be far more
        memory-intense per reference than BT (stencil sweeps), and no
        better in page-level locality."""
        bt = characterize(runner, get_workload("BT"))
        hashing = characterize(runner, get_workload("Hashing"))
        assert hashing.memory_intensity > 2 * bt.memory_intensity
        # (page_hit_rate also separates them, but only at scales where
        # the profiling cache is meaningfully smaller than the table —
        # see the realistic-scale run in docs/workloads.md.)

    def test_render(self, runner):
        profiles = [
            characterize(runner, get_workload(name))
            for name in ("CG", "BT")
        ]
        text = render_profiles(profiles)
        assert "CG" in text and "BT" in text
        assert "pg-hit" in text
        assert len(text.splitlines()) == 4

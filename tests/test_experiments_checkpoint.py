"""Checkpoint-study tests (Young/Daly model)."""

import math

import pytest

from repro.errors import ModelError
from repro.experiments.checkpoint import (
    PFS_TARGET,
    CheckpointTarget,
    checkpoint_cost,
    compare_targets,
    expected_waste,
    plan_checkpointing,
    young_optimal_interval,
)
from repro.tech.params import PCM, STTRAM
from repro.units import GiB


class TestCheckpointCost:
    def test_time_is_footprint_over_bandwidth(self):
        target = CheckpointTarget("X", bandwidth_gbs=2.0)
        seconds, _ = checkpoint_cost(4 * 10**9, target)
        assert seconds == pytest.approx(2.0)

    def test_energy_from_write_density(self):
        target = CheckpointTarget("X", bandwidth_gbs=1.0, write_pj_per_bit=100.0)
        _, joules = checkpoint_cost(10**9, target)
        assert joules == pytest.approx(10**9 * 8 * 100e-12)

    def test_pfs_has_no_node_energy(self):
        _, joules = checkpoint_cost(1 * GiB, PFS_TARGET)
        assert joules == 0.0

    def test_from_technology(self):
        target = CheckpointTarget.from_technology(PCM, bandwidth_gbs=2.0)
        assert target.write_pj_per_bit == PCM.write_energy_pj_per_bit

    def test_validation(self):
        with pytest.raises(ModelError):
            CheckpointTarget("X", bandwidth_gbs=0.0)
        with pytest.raises(ModelError):
            checkpoint_cost(0, PFS_TARGET)


class TestYoungDaly:
    def test_optimal_interval_formula(self):
        assert young_optimal_interval(10.0, 86400.0) == pytest.approx(
            math.sqrt(2 * 10.0 * 86400.0)
        )

    def test_waste_minimized_at_tau_opt(self):
        delta, mtbf = 30.0, 86400.0
        tau_opt = young_optimal_interval(delta, mtbf)
        optimal = expected_waste(delta, tau_opt, mtbf)
        for factor in (0.5, 0.8, 1.25, 2.0):
            assert expected_waste(delta, tau_opt * factor, mtbf) >= optimal

    def test_faster_target_less_waste(self):
        footprint = 4 * GiB
        fast = plan_checkpointing(
            footprint, CheckpointTarget("NVM", bandwidth_gbs=2.0)
        )
        slow = plan_checkpointing(footprint, PFS_TARGET)
        assert fast.waste_fraction < slow.waste_fraction
        assert fast.tau_opt_s < slow.tau_opt_s  # can checkpoint more often

    def test_validation(self):
        with pytest.raises(ModelError):
            young_optimal_interval(0.0, 1.0)
        with pytest.raises(ModelError):
            expected_waste(1.0, 0.0, 1.0)


class TestCompareTargets:
    def test_sorted_by_waste(self):
        targets = [
            PFS_TARGET,
            CheckpointTarget.from_technology(PCM, 2.0),
            CheckpointTarget.from_technology(STTRAM, 4.0),
        ]
        plans = compare_targets(4 * GiB, targets)
        wastes = [p.waste_fraction for p in plans]
        assert wastes == sorted(wastes)
        # Node-local NVM beats the shared PFS — the paper's motivation.
        assert plans[0].target.name != "PFS"

    def test_nvm_checkpointing_order_of_magnitude(self):
        """4 GB to a 2 GB/s PCM: 2 s checkpoints; to a 0.2 GB/s PFS
        share: 20 s — an order of magnitude, matching the motivation
        for memory-speed checkpointing."""
        pcm_plan = plan_checkpointing(
            4 * 10**9, CheckpointTarget.from_technology(PCM, 2.0)
        )
        pfs_plan = plan_checkpointing(4 * 10**9, PFS_TARGET)
        assert pfs_plan.delta_s / pcm_plan.delta_s == pytest.approx(10.0)

"""Workload kernel tests: every benchmark must do verifiably real work
and emit a well-formed, deterministic address stream."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads.amg import AMGWorkload
from repro.workloads.bt import BTWorkload
from repro.workloads.cg import CGWorkload
from repro.workloads.graph500 import (
    Graph500Workload,
    edges_to_csr,
    rmat_edges,
)
from repro.workloads.hashing import HashingWorkload
from repro.workloads.lu import LUWorkload
from repro.workloads.registry import SUITE, get_workload, workload_names
from repro.workloads.sp import SPWorkload
from repro.workloads.velvet import VelvetWorkload

#: Scale used in these tests (small and fast).
S = 1.0 / 8192


class TestRegistry:
    def test_eight_workloads(self):
        assert len(SUITE) == 8

    def test_names(self):
        assert set(workload_names()) == {
            "BT", "SP", "LU", "CG", "AMG2013", "Graph500", "Hashing", "Velvet",
        }

    def test_get_workload(self):
        assert get_workload("CG").name == "CG"
        with pytest.raises(KeyError):
            get_workload("HPL")

    def test_table4_metadata(self):
        graph = get_workload("Graph500").info
        assert graph.footprint_gb == 4.0
        assert graph.t_ref_s == 157.0
        assert graph.inputs == "-s 22 -e 4"
        bt = get_workload("BT").info
        assert bt.footprint_gb == 1.69
        assert bt.t_ref_s == 36.0

    def test_meta_conversion(self):
        meta = get_workload("CG").info.meta()
        assert meta.footprint_bytes == int(1.5 * 1024**3)
        assert meta.t_ref_s == 54.8

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigError):
            get_workload("CG").scaled_footprint_bytes(0)


class TestAlgorithmCorrectness:
    """Each kernel's own verification must hold — the traces come from
    real algorithm executions, not address synthesis."""

    def test_cg_converges(self):
        res = CGWorkload(iterations=2).trace(scale=S, seed=1)
        assert res.checks["converging"]
        residuals = res.checks["residuals"]
        assert residuals[-1] < residuals[0]

    def test_bt_solves_block_systems(self):
        res = BTWorkload().trace(scale=S, seed=1)
        assert res.checks["solved"]
        assert res.checks["max_residual"] < 1e-8

    def test_sp_solves_penta_systems(self):
        res = SPWorkload().trace(scale=S, seed=1)
        assert res.checks["solved"]

    def test_lu_relaxation_converges(self):
        res = LUWorkload(iterations=1).trace(scale=S, seed=1)
        assert res.checks["residual_after"] < res.checks["residual_before"]

    def test_amg_vcycle_reduces_residual(self):
        res = AMGWorkload(cycles=1).trace(scale=S, seed=1)
        assert res.checks["converging"]
        assert res.checks["levels"] >= 2  # a real multigrid hierarchy

    def test_graph500_tree_valid(self):
        res = Graph500Workload().trace(scale=S, seed=1)
        assert res.checks["tree_valid"]
        assert res.checks["reached"][0] > 0

    def test_hashing_lookups_match_ground_truth(self):
        res = HashingWorkload().trace(scale=S, seed=1)
        assert res.checks["correct"]
        assert res.checks["found"] == res.checks["expected_found"]

    def test_velvet_kmer_table_exact(self):
        res = VelvetWorkload().trace(scale=S, seed=1)
        assert res.checks["kmers_correct"]
        assert res.checks["contigs"] > 0


class TestStreamProperties:
    @pytest.mark.parametrize("name", list(SUITE))
    def test_stream_nonempty_and_in_regions(self, name):
        res = get_workload(name).trace(scale=S, seed=2)
        assert len(res.stream) > 1000
        stats = res.stream.stats()
        lo = min(r.base for r in res.tracer.regions)
        hi = max(r.end for r in res.tracer.regions)
        assert lo <= stats.min_address <= stats.max_address < hi

    @pytest.mark.parametrize("name", list(SUITE))
    def test_deterministic_given_seed(self, name):
        a = get_workload(name).trace(scale=S, seed=3)
        b = get_workload(name).trace(scale=S, seed=3)
        assert len(a.stream) == len(b.stream)
        batch_a = a.stream.head(500).as_batch()
        batch_b = b.stream.head(500).as_batch()
        # Addresses are identical modulo the (identical) region layout.
        assert np.array_equal(batch_a.addresses, batch_b.addresses)
        assert np.array_equal(batch_a.is_store, batch_b.is_store)

    @pytest.mark.parametrize("name", list(SUITE))
    def test_has_loads_and_stores(self, name):
        res = get_workload(name).trace(scale=S, seed=2)
        stats = res.stream.stats()
        assert stats.loads > 0
        assert stats.stores > 0

    def test_footprint_tracks_scale(self):
        small = get_workload("CG").trace(scale=S, seed=1).stream.stats()
        large = get_workload("CG").trace(scale=S * 4, seed=1).stream.stats()
        ratio = large.footprint_bytes / small.footprint_bytes
        assert 2.0 < ratio < 8.0  # roughly linear in scale

    def test_setup_is_untraced(self):
        """The first recorded access must come from the solve phase, not
        matrix construction (construction writes would appear as stores
        to the matrix region at the very start)."""
        res = CGWorkload(iterations=1).trace(scale=S, seed=1)
        head = res.stream.head(10).as_batch()
        assert head.is_store.sum() == 0  # CG starts with rho = r.r loads


class TestGraph500Internals:
    def test_rmat_shape(self):
        edges = rmat_edges(8, 4, np.random.default_rng(0))
        assert edges.shape == (256 * 4, 2)
        assert edges.max() < 256

    def test_rmat_skew(self):
        """R-MAT graphs are scale-free: max degree >> mean degree."""
        edges = rmat_edges(12, 8, np.random.default_rng(0))
        xoff, _ = edges_to_csr(edges, 1 << 12)
        degrees = np.diff(xoff)
        assert degrees.max() > 5 * degrees.mean()

    def test_csr_undirected(self):
        edges = np.array([[0, 1], [2, 3]])
        xoff, xadj = edges_to_csr(edges, 4)
        assert len(xadj) == 4  # both directions
        assert 0 in xadj[xoff[1] : xoff[2]]

    def test_csr_removes_self_loops(self):
        edges = np.array([[1, 1], [0, 1]])
        _, xadj = edges_to_csr(edges, 2)
        assert len(xadj) == 2


class TestBTRhsPhase:
    def test_rhs_phase_adds_traffic_and_still_solves(self):
        from repro.workloads.bt import BTWorkload

        without = BTWorkload(sweeps=(0,)).trace(scale=S, seed=4)
        with_rhs = BTWorkload(sweeps=(0,), rhs_phase=True).trace(scale=S, seed=4)
        assert len(with_rhs.stream) > len(without.stream)
        assert with_rhs.checks["solved"]

    def test_rhs_phase_changes_the_system_solved(self):
        """With the stencil phase, the solves target the computed flux
        divergence, not the synthetic rhs — and still verify."""
        from repro.workloads.bt import BTWorkload

        res = BTWorkload(rhs_phase=True).trace(scale=S, seed=4)
        assert res.checks["max_residual"] < 1e-8


class TestSPRhsPhase:
    def test_rhs_phase_adds_traffic_and_still_solves(self):
        from repro.workloads.sp import SPWorkload

        without = SPWorkload(sweeps=(0,)).trace(scale=S, seed=4)
        with_rhs = SPWorkload(sweeps=(0,), rhs_phase=True).trace(scale=S, seed=4)
        assert len(with_rhs.stream) > len(without.stream)
        assert with_rhs.checks["solved"]


class TestVelvetErrors:
    def test_errors_inflate_distinct_kmers_and_stay_exact(self):
        clean = VelvetWorkload().trace(scale=S, seed=5)
        noisy = VelvetWorkload(error_rate=0.02).trace(scale=S, seed=5)
        assert noisy.checks["kmers_correct"]  # still exact vs ground truth
        assert noisy.checks["distinct_kmers"] > clean.checks["distinct_kmers"]

    def test_error_rate_validation(self):
        with pytest.raises(ConfigError):
            VelvetWorkload(error_rate=1.0)

"""Run observatory: correlation IDs, aggregation, traces, diffing."""

from __future__ import annotations

import json
import os
import re

import pytest

from repro.errors import TelemetryError
from repro.model.evaluate import Evaluation
from repro.resilience import FaultInjector, Journal, SweepExecutor
from repro.telemetry import observatory
from repro.telemetry.core import RunContext, Telemetry, new_run_id
from repro.telemetry.exporters import write_prometheus, write_windows_csv
from repro.telemetry.observatory import (
    DiffThresholds,
    aggregate_run,
    chrome_trace,
    diff_runs,
    discover_sources,
    render_diff,
    render_run_overview,
    summary_from_aggregate,
    worker_index,
    write_chrome_trace,
    write_merged,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.windows import WINDOW_FIELDS, WindowRecord

pytestmark = pytest.mark.telemetry

RUN = "20260805T120000-deadbeef"

#: Keys the trace_event spec requires on every traceEvents entry.
TRACE_KEYS = ("ph", "ts", "pid", "tid", "name")


def usable_cpus() -> int:
    return len(os.sched_getaffinity(0))


def make_evaluation(design, workload):
    return Evaluation(
        design_name=design, workload=workload, time_s=1.0, dynamic_j=2.0,
        static_j=3.0, energy_j=5.0, edp_js=5.0, amat_ns=1.5, time_norm=1.0,
        energy_norm=0.5, dynamic_norm=0.4, static_norm=0.6, edp_norm=0.5,
    )


class FakeDesign:
    def __init__(self, name):
        self.name = name

    def sim_key(self):
        return self.name

    def __str__(self):
        return self.name


class FakeWorkload:
    def __init__(self, name):
        self.name = name


class FakeRunner:
    def __init__(self):
        self.scale = 0.001
        self.seed = 0

    def evaluate(self, design, workload):
        return make_evaluation(design.name, workload.name)


DESIGNS = [FakeDesign("D1"), FakeDesign("D2")]
WORKLOADS = [FakeWorkload("W1"), FakeWorkload("W2")]


def write_events(path, events, torn_tail=False):
    """Write a JSONL event log, optionally with a kill-torn last line."""
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(e, sort_keys=True) for e in events]
    text = "".join(line + "\n" for line in lines)
    if torn_tail:
        text += '{"kind": "span", "name": "torn.in.hal'
    path.write_text(text)


def ev(worker, seq, ts, **fields):
    """One synthetic correlated event."""
    payload = {"run": RUN, "worker": worker, "seq": seq, "ts": ts,
               "kind": "span", "name": "sweep.cell", "duration_s": 0.5}
    payload.update(fields)
    return payload


def make_synthetic_run(root):
    """A run root: coordinator artifacts plus two worker directories.

    Both worker logs end in a kill-torn line, the root log holds a
    duplicated (run, worker, seq) line (a resume replaying its tail),
    and worker-1's timestamps interleave out of order.
    """
    root_events = [
        ev("root", 0, 100.0, kind="run_started", name="run"),
        ev("root", 1, 130.0, kind="cell_finished", name="cell",
           design="D1", workload="W1", status="ok", duration_s=9.0,
           cell="c-1"),
        ev("root", 1, 130.0, kind="cell_finished", name="cell",
           design="D1", workload="W1", status="ok", duration_s=9.0,
           cell="c-1"),  # duplicate appended by a resumed coordinator
        ev("root", 2, 131.0, kind="cell_finished", name="cell",
           design="D2", workload="W1", status="ok", duration_s=8.0,
           cell="c-2"),
    ]
    write_events(root / "events.jsonl", root_events)

    registry = MetricsRegistry()
    registry.counter("repro_sweep_cells_total", status="ok").inc(2)
    write_prometheus(registry, root / "metrics.prom",
                     extra_labels={"run": RUN, "worker": "root"})

    w0 = [
        ev("worker-0", 0, 110.0, duration_s=2.0),
        ev("worker-0", 1, 120.0, duration_s=3.0),
        ev("worker-0", 2, 115.0, duration_s=1.0),  # out-of-order append
    ]
    write_events(root / "worker-0" / "events.jsonl", w0, torn_tail=True)
    reg0 = MetricsRegistry()
    reg0.counter("repro_engine_runs", level="L1", path="vector").inc(30)
    reg0.counter("repro_engine_runs", level="L1", path="scalar").inc(10)
    reg0.histogram("repro_span_seconds", buckets=(1.0, 10.0),
                   name="sweep.cell").observe(2.0)
    write_prometheus(reg0, root / "worker-0" / "metrics.prom",
                     extra_labels={"run": RUN, "worker": "worker-0"})

    w1 = [
        ev("worker-1", 0, 105.0, duration_s=4.0),
        ev("worker-1", 1, 125.0, duration_s=2.5),
    ]
    write_events(root / "worker-1" / "events.jsonl", w1, torn_tail=True)
    reg1 = MetricsRegistry()
    reg1.counter("repro_engine_runs", level="L1", path="vector").inc(10)
    reg1.counter("repro_engine_runs", level="L1", path="scalar").inc(10)
    reg1.histogram("repro_span_seconds", buckets=(1.0, 10.0),
                   name="sweep.cell").observe(4.0)
    write_prometheus(reg1, root / "worker-1" / "metrics.prom",
                     extra_labels={"run": RUN, "worker": "worker-1"})

    counters = {field: i for i, field in enumerate(WINDOW_FIELDS)}
    write_windows_csv(
        [WindowRecord(index=0, start_refs=0, end_refs=100, level="L1",
                      **counters)],
        root / "worker-0" / "windows_sim.csv",
    )
    write_windows_csv(
        [WindowRecord(index=0, start_refs=0, end_refs=100, level="L1",
                      **counters)],
        root / "worker-1" / "windows_sim.csv",
    )
    return root


# ----------------------------------------------------------------------
# Correlation identity
# ----------------------------------------------------------------------


class TestRunContext:
    def test_new_run_id_format_and_uniqueness(self):
        run_id = new_run_id(lambda: 0.0)
        assert re.fullmatch(r"19700101T000000-[0-9a-f]{8}", run_id)
        assert new_run_id() != new_run_id()

    def test_child_rebinds_worker_and_drops_cell(self):
        context = RunContext(RUN, cell_key="c-9")
        child = context.child("worker-3")
        assert child == RunContext(RUN, "worker-3")
        assert context.labels() == {"run": RUN, "worker": "root"}

    def test_events_carry_run_worker_seq_and_cell(self, tmp_path):
        telemetry = Telemetry(
            tmp_path, run_context=RunContext(RUN, "worker-1")
        )
        telemetry.event(kind="first")
        with telemetry.cell_scope("c-42"):
            with telemetry.span("sweep.cell"):
                pass
        telemetry.close()
        events = observatory._source_events("worker-1", tmp_path)
        assert [e["seq"] for e in events] == [0, 1]
        assert all(e["run"] == RUN for e in events)
        assert all(e["worker"] == "worker-1" for e in events)
        assert "cell" not in events[0]
        assert events[1]["cell"] == "c-42"

    def test_seq_continues_across_resume(self, tmp_path):
        first = Telemetry(tmp_path, run_context=RunContext(RUN))
        first.event(kind="a")
        first.event(kind="b")
        first.close()
        resumed = Telemetry(tmp_path, run_context=RunContext(RUN))
        resumed.event(kind="c")
        resumed.close()
        seqs = [
            e["seq"]
            for e in observatory._source_events("root", tmp_path)
        ]
        assert seqs == [0, 1, 2]  # no (run, worker, seq) collision

    def test_metrics_snapshot_carries_provenance_labels(self, tmp_path):
        telemetry = Telemetry(
            tmp_path, run_context=RunContext(RUN, "worker-0")
        )
        telemetry.counter("repro_cells", status="ok").inc(3)
        telemetry.flush()
        text = (tmp_path / "metrics.prom").read_text()
        assert (
            f'repro_cells{{run="{RUN}",status="ok",worker="worker-0"}} 3'
            in text
        )

    def test_flush_is_atomic_under_failed_replace(self, tmp_path,
                                                  monkeypatch):
        # Regression pin: the snapshot must go through the atomic
        # write-and-rename helper, so a failed rename (or a kill at
        # that point) leaves the previous complete file.
        telemetry = Telemetry(tmp_path, run_context=RunContext(RUN))
        telemetry.counter("repro_cells").inc()
        telemetry.flush()
        before = (tmp_path / "metrics.prom").read_text()

        telemetry.counter("repro_cells").inc()

        def boom(src, dst):
            raise OSError("injected rename failure")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            telemetry.flush()
        monkeypatch.undo()
        assert (tmp_path / "metrics.prom").read_text() == before
        leftovers = [
            p.name for p in tmp_path.iterdir() if p.name.endswith(".tmp")
        ]
        assert leftovers == []


# ----------------------------------------------------------------------
# Discovery and event merging
# ----------------------------------------------------------------------


class TestDiscovery:
    def test_worker_index(self):
        assert worker_index("worker-3") == 3
        assert worker_index("worker-12") == 12
        assert worker_index("worker-x") is None
        assert worker_index("merged") is None

    def test_sources_in_numeric_order(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        (root / "worker-10").mkdir()
        (root / "worker-10" / "events.jsonl").write_text("")
        labels = [label for label, _ in discover_sources(root)]
        assert labels == ["root", "worker-0", "worker-1", "worker-10"]

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(TelemetryError, match="no telemetry"):
            discover_sources(tmp_path / "absent")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(TelemetryError, match="no telemetry artifacts"):
            discover_sources(tmp_path)


class TestEventMerge:
    def test_merge_is_ordered_deduplicated_and_loss_free(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        aggregate = aggregate_run(root)

        # Loss-free: all 8 distinct valid lines survive; the root's
        # duplicated (run, worker, seq) line collapses to one; both
        # torn trailing lines are dropped rather than corrupting the
        # merge.
        assert len(aggregate.events) == 8
        keys = [(e["run"], e["worker"], e["seq"]) for e in aggregate.events]
        assert len(set(keys)) == len(keys)
        assert not any(
            e.get("name") == "torn.in.hal" for e in aggregate.events
        )

        # Ordered by wall clock even though worker-0 appended its
        # ts=115 line after ts=120, and the sources interleave.
        timestamps = [e["ts"] for e in aggregate.events]
        assert timestamps == sorted(timestamps)
        assert [e["worker"] for e in aggregate.events[:3]] == [
            "root", "worker-1", "worker-0",
        ]
        assert aggregate.run_id == RUN
        assert aggregate.sources == ["root", "worker-0", "worker-1"]

    def test_merged_directory_reaggregates_identically(self, tmp_path):
        root = make_synthetic_run(tmp_path / "run")
        aggregate = aggregate_run(root)
        write_merged(aggregate, tmp_path / "merged")
        again = aggregate_run(tmp_path / "merged")
        assert again.events == aggregate.events
        assert again.metrics == aggregate.metrics
        assert again.metric_kinds == aggregate.metric_kinds
        assert [
            (r.run, r.worker, r.context, r.record) for r in again.windows
        ] == [
            (r.run, r.worker, r.context, r.record)
            for r in aggregate.windows
        ]

    def test_legacy_events_without_context_still_merge(self, tmp_path):
        write_events(tmp_path / "events.jsonl", [
            {"ts": 1.0, "kind": "span", "name": "a", "duration_s": 0.1},
            {"ts": 2.0, "kind": "span", "name": "b", "duration_s": 0.2},
        ])
        aggregate = aggregate_run(tmp_path)
        assert [e["name"] for e in aggregate.events] == ["a", "b"]
        assert aggregate.run_id is None


# ----------------------------------------------------------------------
# Metric merging: exact conservation
# ----------------------------------------------------------------------


class TestConservation:
    def test_merged_totals_equal_sum_of_workers_exactly(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        aggregate = aggregate_run(root)

        assert aggregate.metric_value(
            "repro_sweep_cells_total", status="ok") == 2.0
        # 30 + 10 vector runs across the two workers, 10 + 10 scalar.
        assert aggregate.metric_value(
            "repro_engine_runs", level="L1", path="vector") == 40.0
        assert aggregate.metric_value(
            "repro_engine_runs", level="L1", path="scalar") == 20.0
        assert aggregate.vector_fractions() == {"L1": 40.0 / 60.0}

        # Histogram buckets, sums, and counts all conserve: one 2.0s
        # and one 4.0s observation against buckets (1, 10).
        assert aggregate.metric_value(
            "repro_span_seconds_bucket", le="1.0", name="sweep.cell") == 0.0
        assert aggregate.metric_value(
            "repro_span_seconds_bucket", le="10.0", name="sweep.cell") == 2.0
        assert aggregate.metric_value(
            "repro_span_seconds_bucket", le="+Inf", name="sweep.cell") == 2.0
        assert aggregate.metric_value(
            "repro_span_seconds_sum", name="sweep.cell") == 6.0
        assert aggregate.metric_value(
            "repro_span_seconds_count", name="sweep.cell") == 2.0

    def test_window_rows_keep_provenance(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        aggregate = aggregate_run(root)
        assert sorted((r.worker, r.context) for r in aggregate.windows) == [
            ("worker-0", "sim"), ("worker-1", "sim"),
        ]
        assert all(r.run == RUN for r in aggregate.windows)
        # Level digests sum the two identical windows.
        digest = {d.level: d for d in aggregate.level_digests()}["L1"]
        loads = dict(zip(WINDOW_FIELDS, range(len(WINDOW_FIELDS))))
        assert digest.accesses == 2 * (loads["loads"] + loads["stores"])

    def test_kind_conflict_refuses_to_merge(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        text = (root / "worker-1" / "metrics.prom").read_text()
        (root / "worker-1" / "metrics.prom").write_text(
            text.replace(
                "# TYPE repro_engine_runs counter",
                "# TYPE repro_engine_runs gauge",
            )
        )
        with pytest.raises(TelemetryError, match="refusing to merge"):
            aggregate_run(root)

    def test_summary_from_aggregate_counts_all_workers(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        aggregate = aggregate_run(root)
        summary = summary_from_aggregate(aggregate)
        assert summary.events_by_kind["span"] == 5
        assert summary.events_by_kind["cell_finished"] == 2
        span = {d.name: d for d in summary.spans}["sweep.cell"]
        assert span.count == 5
        assert span.total_s == pytest.approx(2.0 + 3.0 + 1.0 + 2.5 + 4.0)

    def test_render_run_overview_mentions_every_source(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        text = render_run_overview(aggregate_run(root))
        assert f"run id: {RUN}" in text
        for label in ("root:", "worker-0:", "worker-1:"):
            assert label in text
        assert "2 ok" in text


# ----------------------------------------------------------------------
# Chrome trace export
# ----------------------------------------------------------------------


class TestChromeTrace:
    def test_every_event_has_required_keys(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        trace = chrome_trace(aggregate_run(root))
        assert trace["traceEvents"]
        for event in trace["traceEvents"]:
            for key in TRACE_KEYS:
                assert key in event, f"{key} missing from {event}"
            assert isinstance(event["ts"], int) and event["ts"] >= 0

    def test_one_process_track_per_worker(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        trace = chrome_trace(aggregate_run(root))
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert {e["args"]["name"] for e in meta} == {
            "root", "worker-0", "worker-1",
        }
        assert len({e["pid"] for e in meta}) == 3

    def test_spans_become_complete_slices(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        trace = chrome_trace(aggregate_run(root))
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 5  # worker spans; cell events export async
        assert all(e["cat"] == "span" and e["dur"] >= 0 for e in slices)

    def test_cells_become_balanced_async_slices(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        trace = chrome_trace(aggregate_run(root))
        begins = [e for e in trace["traceEvents"] if e["ph"] == "b"]
        ends = [e for e in trace["traceEvents"] if e["ph"] == "e"]
        assert len(begins) == len(ends) == 2
        assert {e["name"] for e in begins} == {"D1/W1", "D2/W1"}
        assert {e["id"] for e in begins} == {e["id"] for e in ends}

    def test_trace_file_is_valid_json(self, tmp_path):
        root = make_synthetic_run(tmp_path / "run")
        path = write_chrome_trace(
            aggregate_run(root), tmp_path / "trace.json"
        )
        loaded = json.loads(path.read_text())
        assert loaded["otherData"]["run_id"] == RUN
        assert loaded["displayTimeUnit"] == "ms"


# ----------------------------------------------------------------------
# Run-to-run diffing
# ----------------------------------------------------------------------


def run_sweep_with_telemetry(tmp_path, name, evaluate=None):
    """One journalled fake-runner sweep with telemetry; returns its dir."""
    runner = FakeRunner()
    telemetry_dir = tmp_path / name
    telemetry = Telemetry(telemetry_dir)
    executor = SweepExecutor(
        runner, journal=Journal(tmp_path / f"{name}.jsonl"),
        telemetry=telemetry, evaluate=evaluate,
    )
    result = executor.run(DESIGNS, WORKLOADS)
    telemetry.close()
    assert result.counts() == {"ok": 4}
    return telemetry_dir


class TestDiff:
    def test_identical_runs_have_no_regressions(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        diff = diff_runs(aggregate_run(root), aggregate_run(root))
        assert diff.ok
        assert diff.entries  # it compared things, not nothing
        assert "no regressions" in render_diff(diff)

    def test_two_real_runs_diff_clean(self, tmp_path):
        baseline = run_sweep_with_telemetry(tmp_path, "baseline")
        candidate = run_sweep_with_telemetry(tmp_path, "candidate")
        diff = diff_runs(
            aggregate_run(baseline), aggregate_run(candidate),
            DiffThresholds(span_pct=200.0, span_min_s=5.0),
        )
        assert diff.ok, render_diff(diff)

    def test_injected_slow_cell_regresses_span(self, tmp_path):
        baseline = run_sweep_with_telemetry(tmp_path, "baseline")
        runner = FakeRunner()
        injector = FaultInjector().delay_cell("D1", "W1", 0.3)
        candidate = run_sweep_with_telemetry(
            tmp_path, "candidate", evaluate=injector.wrap(runner.evaluate)
        )
        diff = diff_runs(aggregate_run(baseline), aggregate_run(candidate))
        assert not diff.ok
        kinds = {(e.kind, e.name) for e in diff.regressions}
        assert ("span", "sweep.cell") in kinds
        assert "REGRESSIONS" in render_diff(diff)

    def test_span_needs_both_gates(self, tmp_path):
        # +900% but only +9ms: below the absolute floor, not a
        # regression; +60% and +0.6s: both gates crossed.
        root = make_synthetic_run(tmp_path)
        base = aggregate_run(root)
        small = aggregate_run(root)
        small.events = [dict(e) for e in base.events]
        for event in small.events:
            if event.get("seq") == 0 and event["worker"] == "worker-0":
                event["duration_s"] = 2.009

        assert diff_runs(
            base, small, DiffThresholds(span_pct=1.0, span_min_s=0.05)
        ).ok

        big = aggregate_run(root)
        big.events = [dict(e) for e in base.events]
        for event in big.events:
            if event.get("worker", "").startswith("worker"):
                event["duration_s"] = float(event["duration_s"]) + 2.0
        diff = diff_runs(base, big)
        assert [e.name for e in diff.regressions] == ["sweep.cell"]

    def test_hit_rate_regresses_in_either_direction(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        base = aggregate_run(root)
        moved = aggregate_run(root)
        for row in moved.windows:
            object.__setattr__(row.record, "load_hits",
                               row.record.load_hits + 1)
        assert not diff_runs(base, moved).ok
        assert not diff_runs(moved, base).ok  # a *rise* also flags

    def test_vector_fraction_only_drops_regress(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        base = aggregate_run(root)
        slower = aggregate_run(root)
        slower.metrics["repro_engine_runs"] = {
            key: (value * 4 if dict(key).get("path") == "scalar" else value)
            for key, value in base.metrics["repro_engine_runs"].items()
        }
        assert not diff_runs(base, slower).ok
        assert diff_runs(slower, base).ok  # fraction rising is fine

    def test_new_failed_cells_regress(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        base = aggregate_run(root)
        failing = aggregate_run(root)
        failing.metrics["repro_sweep_cells_total"] = {
            (("status", "failed"),): 1.0,
            **base.metrics["repro_sweep_cells_total"],
        }
        diff = diff_runs(base, failing)
        assert [e.name for e in diff.regressions] == ["failed"]

    def test_thresholds_validate(self):
        with pytest.raises(TelemetryError, match="non-negative"):
            DiffThresholds(span_pct=-1).validate()
        with pytest.raises(TelemetryError, match="hit_rate_abs"):
            DiffThresholds(hit_rate_abs=2.0).validate()
        with pytest.raises(TelemetryError, match="vector_fraction_abs"):
            DiffThresholds(vector_fraction_abs=-0.1).validate()


class TestSupervisionDiff:
    """Worker-pool health counters gate run-to-run diffs."""

    @staticmethod
    def _sup(aggregate, **counters):
        clone_metrics = dict(aggregate.metrics)
        for name, value in counters.items():
            clone_metrics[f"repro_pool_{name}"] = {(): float(value)}
        aggregate.metrics = clone_metrics
        return aggregate

    def test_poisoned_and_restart_increases_regress(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        base = aggregate_run(root)
        worse = self._sup(
            aggregate_run(root), poisoned_cells_total=1,
            restarts_total=2,
        )
        diff = diff_runs(base, worse)
        assert {e.name for e in diff.regressions} == {
            "poisoned", "restarts"
        }
        assert all(e.kind == "supervision" for e in diff.regressions)

    def test_requeues_and_recovery_do_not_regress(self, tmp_path):
        # Requeues that still converge are recovery working as
        # designed, not a regression; fewer restarts is an improvement.
        root = make_synthetic_run(tmp_path)
        base = self._sup(aggregate_run(root), restarts_total=3)
        better = self._sup(
            aggregate_run(root), restarts_total=1, requeues_total=2
        )
        assert diff_runs(base, better).ok

    def test_unsupervised_runs_add_no_entries(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        diff = diff_runs(aggregate_run(root), aggregate_run(root))
        assert not any(e.kind == "supervision" for e in diff.entries)


class TestSupervisionReport:
    def test_summary_counts_supervision_events(self, tmp_path):
        from repro.telemetry.report import (
            render_summary,
            summarize_directory,
        )

        telemetry = Telemetry(tmp_path / "t", run_context=RunContext(RUN))
        for kind in ("worker_spawned", "worker_spawned", "worker_died",
                     "worker_respawned", "cell_requeued"):
            telemetry.event(kind, pool_worker="worker-0")
        telemetry.close()
        summary = summarize_directory(tmp_path / "t")
        assert summary.supervision.spawned == 2
        assert summary.supervision.died == 1
        assert summary.supervision.respawned == 1
        assert summary.supervision.requeued == 1
        assert summary.supervision.any
        rendered = render_summary(summary)
        assert "supervision" in rendered
        assert "workers respawned" in rendered

    def test_uneventful_run_renders_no_supervision_section(self,
                                                           tmp_path):
        from repro.telemetry.report import (
            render_summary,
            summarize_directory,
        )

        telemetry = Telemetry(tmp_path / "t", run_context=RunContext(RUN))
        # Spawns alone (no deaths, requeues, drains...) are not worth
        # a section: every parallel campaign spawns workers.
        telemetry.event("worker_spawned", pool_worker="worker-0")
        telemetry.close()
        summary = summarize_directory(tmp_path / "t")
        assert not summary.supervision.any
        assert "supervision" not in render_summary(summary)

    def test_aggregate_summary_carries_supervision(self, tmp_path):
        root = make_synthetic_run(tmp_path)
        extra = [
            ev("root", 90, 140.0, kind="worker_died",
               pool_worker="worker-0", name="x"),
            ev("root", 91, 141.0, kind="cell_requeued",
               pool_worker="worker-0", name="x"),
        ]
        events = [
            json.loads(line)
            for line in (root / "events.jsonl").read_text().splitlines()
        ]
        write_events(root / "events.jsonl", events + extra)
        summary = summary_from_aggregate(aggregate_run(root))
        assert summary.supervision.died == 1
        assert summary.supervision.requeued == 1


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestCli:
    def test_merge_trace_report_diff_round_trip(self, tmp_path, capsys):
        from repro.experiments.cli import main

        root = make_synthetic_run(tmp_path / "run")
        assert main(["telemetry", "merge", str(root)]) == 0
        merged = root / "merged"
        assert (merged / "events.jsonl").exists()
        assert (merged / "metrics.prom").exists()
        assert (merged / "run_windows.csv").exists()

        assert main(["telemetry", "trace", str(merged),
                     "--out", str(tmp_path / "trace.json")]) == 0
        trace = json.loads((tmp_path / "trace.json").read_text())
        for event in trace["traceEvents"]:
            for key in TRACE_KEYS:
                assert key in event

        assert main(["telemetry", "report", str(root)]) == 0
        out = capsys.readouterr().out
        assert "run overview" in out
        assert "worker-1" in out

        assert main(["telemetry", "diff", str(root), str(merged)]) == 0

    def test_diff_exit_codes_and_threshold_flags(self, tmp_path, capsys):
        from repro.experiments.cli import main

        baseline = run_sweep_with_telemetry(tmp_path, "baseline")
        runner = FakeRunner()
        injector = FaultInjector().delay_cell("D1", "W1", 0.3)
        candidate = run_sweep_with_telemetry(
            tmp_path, "candidate", evaluate=injector.wrap(runner.evaluate)
        )
        assert main(["telemetry", "diff", str(baseline),
                     str(candidate)]) == 1
        assert "REGRESSIONS" in capsys.readouterr().out
        # Loose thresholds wave the same pair through.
        assert main([
            "telemetry", "diff", str(baseline), str(candidate),
            "--span-pct", "10000", "--span-min-s", "30",
        ]) == 0

    def test_report_plain_directory_unchanged(self, tmp_path, capsys):
        from repro.experiments.cli import main

        telemetry = Telemetry(tmp_path / "t", run_context=RunContext(RUN))
        with telemetry.span("alpha"):
            pass
        telemetry.close()
        assert main(["telemetry", "report", str(tmp_path / "t")]) == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out
        assert "run overview" not in out  # no worker dirs, plain path

    def test_missing_directory_is_a_clean_error(self, tmp_path):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit, match="no telemetry"):
            main(["telemetry", "merge", str(tmp_path / "nope")])


# ----------------------------------------------------------------------
# End-to-end: executor -> run context -> aggregate
# ----------------------------------------------------------------------


@pytest.mark.resilience
class TestExecutorIntegration:
    def test_serial_sweep_correlates_and_aggregates(self, tmp_path):
        runner = FakeRunner()
        telemetry = Telemetry(tmp_path / "telemetry")
        journal = Journal(tmp_path / "journal.jsonl")
        executor = SweepExecutor(runner, journal=journal,
                                 telemetry=telemetry)
        executor.run(DESIGNS, WORKLOADS)
        telemetry.close()

        run_id = telemetry.run_context.run_id
        assert telemetry.run_context.worker_id == "root"
        for entry in journal.entries():
            assert entry.run_id == run_id

        aggregate = aggregate_run(tmp_path / "telemetry")
        assert aggregate.run_id == run_id
        finished = [
            e for e in aggregate.events if e["kind"] == "cell_finished"
        ]
        assert len(finished) == 4
        assert all(e["run"] == run_id for e in finished)
        assert all("cell" in e for e in finished)
        assert aggregate.metric_value(
            "repro_sweep_cells_total", status="ok") == 4.0

    @pytest.mark.slow
    @pytest.mark.skipif(
        usable_cpus() < 2,
        reason="parallel sweep smoke needs >= 2 usable CPUs",
    )
    def test_parallel_sweep_merges_across_workers(self, tmp_path):
        from repro.designs.nmm import NMMDesign
        from repro.designs.configs import N_CONFIGS
        from repro.designs.reference import ReferenceDesign
        from repro.experiments.runner import Runner
        from repro.tech.params import PCM
        from repro.workloads.registry import get_workload

        scale = 1.0 / 8192
        runner = Runner(scale=scale, seed=5,
                        trace_cache_dir=str(tmp_path / "traces"))
        designs = [
            ReferenceDesign(scale=scale, reference=runner.reference),
            NMMDesign(PCM, N_CONFIGS["N6"], scale=scale,
                      reference=runner.reference),
        ]
        workloads = [get_workload("CG")]
        telemetry = Telemetry(tmp_path / "telemetry")
        executor = SweepExecutor(
            runner, journal=Journal(tmp_path / "journal.jsonl"),
            telemetry=telemetry, workers=2,
        )
        result = executor.run(designs, workloads)
        telemetry.close()
        assert result.counts() == {"ok": 2}

        root = tmp_path / "telemetry"
        assert (root / "worker-0").is_dir()
        assert (root / "worker-1").is_dir()
        aggregate = aggregate_run(root)
        assert aggregate.run_id == telemetry.run_context.run_id
        assert set(aggregate.sources) == {"root", "worker-0", "worker-1"}

        # Conservation across processes: the merged span histogram
        # count equals the sum over per-worker snapshots.
        per_worker = 0.0
        for label, directory in discover_sources(root):
            kinds, samples = observatory._read_metrics(
                directory / "metrics.prom"
            )
            for name, labels, value in samples:
                if (name == "repro_spans_total"
                        and labels.get("name") == "sweep.cell"):
                    per_worker += value
        assert aggregate.metric_value(
            "repro_spans_total", name="sweep.cell") == per_worker
        assert per_worker == 2.0

"""Smoke tests: the examples must run end-to-end.

Marked slow (each drives a full traced evaluation at 1/1024 scale);
run explicitly with ``pytest -m slow tests/test_examples_smoke.py``.
A fast syntax/import check runs unconditionally.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


class TestExamplesCompile:
    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_expected_examples_present(self):
        names = {p.stem for p in EXAMPLES}
        assert {
            "quickstart",
            "capacity_sweep",
            "partitioned_memory",
            "custom_technology",
            "custom_workload",
            "endurance_study",
        } <= names


@pytest.mark.slow
class TestExamplesRun:
    def run_example(self, name, *args):
        path = next(p for p in EXAMPLES if p.stem == name)
        return subprocess.run(
            [sys.executable, str(path), *args],
            capture_output=True,
            text=True,
            timeout=900,
        )

    def test_quickstart(self):
        result = self.run_example("quickstart")
        assert result.returncode == 0, result.stderr
        assert "runtime" in result.stdout
        assert "EDP" in result.stdout

    def test_partitioned_memory(self):
        result = self.run_example("partitioned_memory", "CG")
        assert result.returncode == 0, result.stderr
        assert "oracle placements" in result.stdout

    def test_custom_workload(self):
        result = self.run_example("custom_workload")
        assert result.returncode == 0, result.stderr
        assert "Jacobi2D" in result.stdout

"""NPB class-scaling tests."""

import pytest

from repro.errors import ConfigError
from repro.workloads.cg import CGWorkload
from repro.workloads.hashing import HashingWorkload
from repro.workloads.lu import LUWorkload
from repro.workloads.npb_classes import CLASS_FACTORS, at_npb_class, class_factor


class TestClassFactor:
    def test_growth_direction(self):
        assert class_factor("C", "D") == pytest.approx(16.0)
        assert class_factor("D", "C") == pytest.approx(1 / 16)

    def test_identity(self):
        assert class_factor("B", "B") == 1.0

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            class_factor("D", "Z")

    def test_ordering(self):
        letters = ["S", "W", "A", "B", "C", "D", "E"]
        factors = [CLASS_FACTORS[letter] for letter in letters]
        assert factors == sorted(factors)


class TestAtNpbClass:
    def test_downsizes_class_d_cg(self):
        cg_c = at_npb_class(CGWorkload(), "C")
        assert cg_c.info.footprint_gb == pytest.approx(1.5 / 16)
        assert cg_c.info.t_ref_s == pytest.approx(54.8 / 16)
        assert cg_c.info.inputs == "Class: C"

    def test_upsizes_class_c_lu(self):
        lu_d = at_npb_class(LUWorkload(), "D")
        assert lu_d.info.footprint_gb == pytest.approx(0.8 * 16)

    def test_original_untouched(self):
        cg = CGWorkload()
        at_npb_class(cg, "A")
        assert cg.info.footprint_gb == 1.5

    def test_traced_footprint_follows_class(self):
        scale = 1.0 / 512
        small = at_npb_class(CGWorkload(), "C").trace(scale=scale, seed=1)
        big = CGWorkload().trace(scale=scale / 16, seed=1)
        # Class C at scale s ≈ class D at scale s/16.
        ratio = (
            small.stream.stats().footprint_bytes
            / big.stream.stats().footprint_bytes
        )
        assert 0.5 < ratio < 2.0

    def test_non_npb_inputs_rejected(self):
        with pytest.raises(ConfigError):
            at_npb_class(HashingWorkload(), "C")

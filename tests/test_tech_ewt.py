"""Early-write-termination tests."""

import pytest

from repro.errors import ConfigError
from repro.tech.ewt import with_early_write_termination
from repro.tech.params import DRAM, PCM, STTRAM


class TestEWT:
    def test_write_energy_reduced(self):
        ewt = with_early_write_termination(PCM, redundancy=0.6, efficiency=0.9)
        assert ewt.write_energy_pj_per_bit == pytest.approx(210.3 * (1 - 0.54))

    def test_read_energy_and_latencies_unchanged(self):
        ewt = with_early_write_termination(PCM)
        assert ewt.read_energy_pj_per_bit == PCM.read_energy_pj_per_bit
        assert ewt.write_delay_ns == PCM.write_delay_ns
        assert ewt.read_delay_ns == PCM.read_delay_ns

    def test_name_annotated(self):
        assert with_early_write_termination(STTRAM).name == "STTRAM+EWT"

    def test_original_untouched(self):
        with_early_write_termination(PCM)
        assert PCM.write_energy_pj_per_bit == 210.3

    def test_volatile_rejected(self):
        with pytest.raises(ConfigError):
            with_early_write_termination(DRAM)

    def test_parameter_bounds(self):
        with pytest.raises(ConfigError):
            with_early_write_termination(PCM, redundancy=1.5)
        with pytest.raises(ConfigError):
            with_early_write_termination(PCM, efficiency=-0.1)

    def test_zero_redundancy_identity(self):
        ewt = with_early_write_termination(PCM, redundancy=0.0)
        assert ewt.write_energy_pj_per_bit == PCM.write_energy_pj_per_bit

    def test_usable_in_designs(self):
        """The transformed tech slots straight into NMM."""
        from repro.designs.configs import N_CONFIGS
        from repro.designs.nmm import NMMDesign

        design = NMMDesign(
            with_early_write_termination(PCM), N_CONFIGS["N6"], scale=1 / 4096
        )
        bindings = design.lower_bindings(1 << 30)
        assert bindings["NVM"].write_pj_per_bit < PCM.write_energy_pj_per_bit

"""Replacement policy engine tests."""

import pytest

from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)
from repro.errors import ConfigError


class TestLRU:
    def test_evicts_least_recently_used(self):
        lru = LRUPolicy(1, 2)
        lru.insert(0, 1)
        lru.insert(0, 2)
        lru.lookup(0, 1)  # touch 1 -> 2 becomes LRU
        victim = lru.insert(0, 3)
        assert victim == 2

    def test_hit_returns_true_miss_false(self):
        lru = LRUPolicy(2, 2)
        lru.insert(0, 10)
        assert lru.lookup(0, 10)
        assert not lru.lookup(0, 11)

    def test_no_eviction_while_ways_free(self):
        lru = LRUPolicy(1, 4)
        assert lru.insert(0, 1) is None
        assert lru.insert(0, 2) is None

    def test_sets_are_independent(self):
        lru = LRUPolicy(2, 1)
        lru.insert(0, 1)
        lru.insert(1, 2)
        assert lru.lookup(0, 1) and lru.lookup(1, 2)

    def test_contents(self):
        lru = LRUPolicy(1, 2)
        lru.insert(0, 1)
        lru.insert(0, 2)
        assert set(lru.contents(0)) == {1, 2}


class TestFIFO:
    def test_hit_does_not_refresh(self):
        fifo = FIFOPolicy(1, 2)
        fifo.insert(0, 1)
        fifo.insert(0, 2)
        fifo.lookup(0, 1)  # unlike LRU, does not protect 1
        victim = fifo.insert(0, 3)
        assert victim == 1

    def test_lookup(self):
        fifo = FIFOPolicy(1, 2)
        fifo.insert(0, 5)
        assert fifo.lookup(0, 5)
        assert not fifo.lookup(0, 6)


class TestRandom:
    def test_deterministic_given_seed(self):
        a = RandomPolicy(1, 2, seed=42)
        b = RandomPolicy(1, 2, seed=42)
        for policy in (a, b):
            policy.insert(0, 1)
            policy.insert(0, 2)
        assert a.insert(0, 3) == b.insert(0, 3)

    def test_victim_is_resident(self):
        policy = RandomPolicy(1, 4)
        for block in range(4):
            policy.insert(0, block)
        victim = policy.insert(0, 99)
        assert victim in range(4)
        assert 99 in policy.contents(0)


class TestFactory:
    def test_all_names(self):
        assert isinstance(make_policy("lru", 2, 2), LRUPolicy)
        assert isinstance(make_policy("fifo", 2, 2), FIFOPolicy)
        assert isinstance(make_policy("random", 2, 2), RandomPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("mru", 2, 2)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            LRUPolicy(0, 2)

    def test_reset_clears(self):
        policy = LRUPolicy(1, 2)
        policy.insert(0, 1)
        policy.reset()
        assert not policy.lookup(0, 1)

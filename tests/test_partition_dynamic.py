"""Dynamic phase-aware partitioning tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.partition.dynamic import plan_dynamic_partition
from repro.partition.ranges import AddressRange
from repro.tech.params import DRAM, PCM
from repro.trace.stream import AddressStream


def phased_stream(range_a, range_b, per_phase=1000):
    """Phase 1 hammers range A, phase 2 hammers range B."""
    rng = np.random.default_rng(0)
    a = range_a.start + (
        rng.integers(0, range_a.size // 64, per_phase).astype(np.uint64) * 64
    )
    b = range_b.start + (
        rng.integers(0, range_b.size // 64, per_phase).astype(np.uint64) * 64
    )
    addrs = np.concatenate([a, b])
    return AddressStream.from_arrays(addrs, 64, 0)


RANGE_A = AddressRange(0x10000, 0x10000 + 64 * 1024, "A")
RANGE_B = AddressRange(0x40000, 0x40000 + 64 * 1024, "B")


class TestDynamicPlan:
    def test_tracks_the_hot_range_across_phases(self):
        stream = phased_stream(RANGE_A, RANGE_B)
        plan = plan_dynamic_partition(
            stream,
            [RANGE_A, RANGE_B],
            dram_tech=DRAM,
            nvm_tech=PCM,
            dram_capacity=64 * 1024,  # room for exactly one range
            n_phases=2,
        )
        assert len(plan.phases) == 2
        assert plan.phases[0].dram_ranges == (RANGE_A,)
        assert plan.phases[1].dram_ranges == (RANGE_B,)

    def test_dynamic_beats_static_on_phase_shifting_traffic(self):
        stream = phased_stream(RANGE_A, RANGE_B, per_phase=20_000)
        plan = plan_dynamic_partition(
            stream,
            [RANGE_A, RANGE_B],
            dram_tech=DRAM,
            nvm_tech=PCM,
            dram_capacity=64 * 1024,
            n_phases=2,
        )
        # Static must serve one of the two phases from PCM entirely;
        # dynamic migrates once and serves both from DRAM.
        assert plan.dynamic_time_ns < plan.static_time_ns
        assert plan.time_gain > 1.0

    def test_migration_costs_accounted(self):
        stream = phased_stream(RANGE_A, RANGE_B, per_phase=100)
        plan = plan_dynamic_partition(
            stream,
            [RANGE_A, RANGE_B],
            dram_tech=DRAM,
            nvm_tech=PCM,
            dram_capacity=64 * 1024,
            n_phases=2,
        )
        migrated = sum(p.migrated_bytes for p in plan.phases)
        assert migrated >= RANGE_B.size  # B moved into DRAM at least

    def test_migration_can_make_dynamic_lose(self):
        """With tiny phase traffic, migration dominates and dynamic
        should not be reported as a win."""
        stream = phased_stream(RANGE_A, RANGE_B, per_phase=10)
        plan = plan_dynamic_partition(
            stream,
            [RANGE_A, RANGE_B],
            dram_tech=DRAM,
            nvm_tech=PCM,
            dram_capacity=64 * 1024,
            n_phases=2,
        )
        assert plan.dynamic_time_ns > plan.static_time_ns

    def test_big_dram_holds_everything_no_migration_after_start(self):
        stream = phased_stream(RANGE_A, RANGE_B)
        plan = plan_dynamic_partition(
            stream,
            [RANGE_A, RANGE_B],
            dram_tech=DRAM,
            nvm_tech=PCM,
            dram_capacity=1 << 30,
            n_phases=2,
        )
        # Both ranges fit in DRAM in both phases and in the static
        # start layout: zero migration, dynamic == static.
        assert all(p.migrated_bytes == 0 for p in plan.phases)
        assert plan.dynamic_time_ns == pytest.approx(plan.static_time_ns)

    def test_validation(self):
        stream = phased_stream(RANGE_A, RANGE_B, per_phase=10)
        with pytest.raises(ConfigError):
            plan_dynamic_partition(
                stream, [], dram_tech=DRAM, nvm_tech=PCM,
                dram_capacity=1024, n_phases=2,
            )
        with pytest.raises(ConfigError):
            plan_dynamic_partition(
                stream, [RANGE_A], dram_tech=DRAM, nvm_tech=PCM,
                dram_capacity=1024, n_phases=0,
            )

"""Sampled simulation window tests."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments.runner import Runner
from repro.experiments.sampling import (
    SampleSpec,
    add_levels,
    delta_levels,
    iter_recorded_segments,
    iter_sample_segments,
    iter_sample_segments_of_length,
    scale_levels,
    snapshot_levels,
)
from repro.trace.synthetic import random_stream
from repro.workloads.registry import get_workload

SCALE = 1.0 / 8192


class TestSampleSpec:
    def test_parse(self):
        spec = SampleSpec.parse("100:400:2000")
        assert (spec.warmup, spec.window, spec.stride) == (100, 400, 2000)
        assert spec.key == "100:400:2000"
        assert spec.measured_fraction == pytest.approx(0.2)

    @pytest.mark.parametrize("text", ["", "1:2", "1:2:3:4", "a:b:c", "1:-2:3"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ConfigError):
            SampleSpec.parse(text)

    def test_rejects_stride_shorter_than_coverage(self):
        with pytest.raises(ConfigError, match="stride"):
            SampleSpec(warmup=100, window=400, stride=400)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ConfigError, match="window"):
            SampleSpec(warmup=0, window=0, stride=10)


class TestSegments:
    def test_covers_warmup_and_window_only(self):
        spec = SampleSpec(warmup=10, window=20, stride=100)
        spans = list(iter_sample_segments_of_length(350, spec))
        # 4 strides started, each fitting its full warmup + window.
        measured = sum(len(r) for r, m in spans if m)
        warmed = sum(len(r) for r, m in spans if not m)
        assert measured == 4 * 20
        assert warmed == 4 * 10
        for r, _ in spans:
            assert (r.start % 100) < 30  # nothing from the skipped tail
        # A stream ending mid-window measures the partial window.
        spans = list(iter_sample_segments_of_length(315, spec))
        assert sum(len(r) for r, m in spans if m) == 3 * 20 + 5

    def test_short_stream_fully_measured(self):
        spec = SampleSpec(warmup=100, window=400, stride=2000)
        spans = list(iter_sample_segments_of_length(300, spec))
        assert spans == [(range(0, 300), True)]
        assert spec.simulated_events(300) == 300

    def test_stream_slicing_concatenates_back(self):
        stream = random_stream(3000, footprint_bytes=1 << 16, seed=7)
        spec = SampleSpec(warmup=64, window=128, stride=512)
        batches = list(iter_sample_segments(stream, spec))
        got = np.concatenate([b.addresses for b, _ in batches])
        spans = iter_sample_segments_of_length(len(stream), spec)
        full = stream.as_batch().addresses
        want = np.concatenate([full[r.start:r.stop] for r, _ in spans])
        assert np.array_equal(got, want)

    def test_recorded_segments_reslice(self):
        stream = random_stream(1000, footprint_bytes=1 << 14, seed=9)
        recorded = [(300, False), (500, True), (200, False)]
        batches = list(iter_recorded_segments(stream, recorded))
        assert sum(len(b) for b, _ in batches) == 1000
        assert sum(len(b) for b, m in batches if m) == 500
        got = np.concatenate([b.addresses for b, _ in batches])
        assert np.array_equal(got, stream.as_batch().addresses)

    def test_recorded_segments_too_short_rejected(self):
        stream = random_stream(100, footprint_bytes=1 << 12, seed=1)
        with pytest.raises(ConfigError, match="shorter"):
            list(iter_recorded_segments(stream, [(40, True)]))


class TestLevelArithmetic:
    def _levels(self, n):
        from repro.cache.stats import LevelStats

        return [
            LevelStats(name="L1", loads=10 * n, load_hits=8 * n,
                       load_misses=2 * n)
        ]

    def test_snapshot_is_value_copy(self):
        live = self._levels(1)
        snap = snapshot_levels(live)
        live[0].loads += 5
        assert snap[0].loads == 10

    def test_delta_and_add(self):
        before, after = self._levels(1), self._levels(3)
        delta = delta_levels(after, before)
        assert delta[0].loads == 20
        acc = add_levels(None, delta)
        acc = add_levels(acc, delta)
        assert acc[0].loads == 40

    def test_scale_preserves_rates(self):
        scaled = scale_levels(self._levels(2), 2.5)
        assert scaled[0].loads == 50
        assert scaled[0].load_hits == 40
        assert scaled[0].hit_rate == self._levels(1)[0].hit_rate

    def test_scale_identity(self):
        levels = self._levels(2)
        assert scale_levels(levels, 1.0)[0] == levels[0]


class TestRejectedCombos:
    def test_sample_with_drain(self):
        with pytest.raises(ConfigError, match="drain"):
            Runner(scale=SCALE, sample="100:400:2000", drain=True)

    def test_sample_with_analytic(self):
        with pytest.raises(ConfigError, match="analytic"):
            Runner(scale=SCALE, sample="100:400:2000", engine="analytic")

    def test_bad_sample_string(self):
        with pytest.raises(ConfigError):
            Runner(scale=SCALE, sample="nope")


class TestSampledAccuracy:
    def test_degenerate_spec_is_exact(self):
        # warmup+window covers every CG event at this scale: the
        # sampled run must be bit-identical to the exact one.
        workload = get_workload("CG")
        exact = Runner(scale=SCALE, seed=4)
        sampled = Runner(scale=SCALE, seed=4, sample="0:100000000:100000000")
        te = exact.prepare(workload)
        ts = sampled.prepare(workload)
        assert ts.sample_factor == 1.0
        assert ts.sample_fidelity == 1.0
        assert ts.references == te.references
        assert [s.__dict__ for s in ts.upper_stats] == [
            s.__dict__ for s in te.upper_stats
        ]

    def test_hit_rate_error_within_envelope(self):
        from repro.designs.configs import N_CONFIGS
        from repro.designs.nmm import NMMDesign
        from repro.tech.params import PCM

        workload = get_workload("CG")
        design_of = lambda r: NMMDesign(
            PCM, N_CONFIGS["N6"], scale=SCALE, reference=r.reference
        )
        exact = Runner(scale=SCALE, seed=4)
        sampled = Runner(scale=SCALE, seed=4, sample="500:2000:5000")
        he = exact.stats_for(design_of(exact), workload)
        hs = sampled.stats_for(design_of(sampled), workload)
        assert 0.0 < sampled.prepare(workload).sample_fidelity < 1.0
        for le, ls in zip(he.levels, hs.levels):
            if le.loads + le.stores == 0:
                continue
            assert abs(le.hit_rate - ls.hit_rate) <= 0.02, le.name
        # Extrapolated totals land near the exact reference count.
        assert hs.references == pytest.approx(he.references, rel=0.05)

    def test_evaluation_runs_end_to_end(self):
        from repro.designs.reference import ReferenceDesign

        sampled = Runner(scale=SCALE, seed=4, sample="500:2000:5000")
        ev = sampled.evaluate(ReferenceDesign(scale=SCALE),
                              get_workload("CG"))
        assert ev.time_norm == pytest.approx(1.0, abs=0.05)


@pytest.mark.resilience
class TestJournalIsolation:
    def _run(self, tmp_path, sample=None):
        from repro.designs.reference import ReferenceDesign
        from repro.resilience import SweepExecutor

        runner = Runner(scale=SCALE, seed=4,
                        trace_cache_dir=str(tmp_path / "cache"),
                        sample=sample)
        executor = SweepExecutor(runner, journal=tmp_path / "j.jsonl")
        return executor.run(
            [ReferenceDesign(scale=SCALE)], [get_workload("CG")]
        )

    def test_engine_class_value(self):
        from repro.resilience import SweepExecutor

        runner = Runner(scale=SCALE, sample="100:400:2000")
        assert SweepExecutor(runner).engine_class == "sampled:100:400:2000"

    def test_sampled_never_satisfies_exact(self, tmp_path):
        first = self._run(tmp_path, sample="500:2000:5000")
        assert all(o.ok and not o.from_journal for o in first.outcomes)
        resumed = self._run(tmp_path, sample=None)
        assert all(not o.from_journal for o in resumed.outcomes)

    def test_exact_never_satisfies_sampled(self, tmp_path):
        first = self._run(tmp_path, sample=None)
        assert all(o.ok and not o.from_journal for o in first.outcomes)
        resumed = self._run(tmp_path, sample="500:2000:5000")
        assert all(not o.from_journal for o in resumed.outcomes)

    def test_same_spec_resumes(self, tmp_path):
        self._run(tmp_path, sample="500:2000:5000")
        resumed = self._run(tmp_path, sample="500:2000:5000")
        assert all(o.from_journal for o in resumed.outcomes)

    def test_different_spec_does_not_resume(self, tmp_path):
        self._run(tmp_path, sample="500:2000:5000")
        resumed = self._run(tmp_path, sample="500:2000:10000")
        assert all(not o.from_journal for o in resumed.outcomes)

    def test_exact_journal_entries_stay_byte_stable(self, tmp_path):
        # Exact cells serialize without any engine_class key — old
        # journals and new ones are byte-compatible.
        self._run(tmp_path, sample=None)
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        exact = [json.loads(l) for l in lines]
        assert exact
        assert all("engine_class" not in e for e in exact)
        self._run(tmp_path, sample="500:2000:5000")
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        tagged = [json.loads(l) for l in lines if "engine_class" in l]
        assert tagged
        assert all(
            e["engine_class"] == "sampled:500:2000:5000" for e in tagged
        )


class TestSampledCLI:
    def test_sample_flag_round_trip(self, capsys):
        from repro.experiments.cli import main

        code = main([
            "--scale", str(SCALE), "--seed", "4", "--workloads", "CG",
            "--sample", "500:2000:5000", "figure", "1",
        ])
        assert code == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_bad_sample_flag_errors(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit, match="WARMUP:WINDOW:STRIDE"):
            main(["--sample", "nope", "--workloads", "CG", "figure", "1"])

    def test_sample_drain_conflict_errors(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit, match="drain"):
            main([
                "--sample", "1:2:3", "--drain", "--workloads", "CG",
                "figure", "1",
            ])

"""Stream transform tests (windowing, sampling, filtering)."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.filters import (
    filter_range,
    loads_only,
    sample_stream,
    split_windows,
    stores_only,
)
from repro.trace.stream import AddressStream


def stream(n=100, chunk=16):
    s = AddressStream(chunk_events=chunk)
    s.append(
        np.arange(n, dtype=np.uint64) * 8,
        8,
        np.arange(n, dtype=np.uint8) % 2,  # alternate load/store
    )
    return s


class TestSplitWindows:
    def test_partition_complete_and_ordered(self):
        windows = split_windows(stream(100), 4)
        assert len(windows) == 4
        assert sum(len(w) for w in windows) == 100
        merged = np.concatenate(
            [w.as_batch().addresses for w in windows if len(w)]
        )
        assert np.array_equal(merged, stream(100).as_batch().addresses)

    def test_equal_sizes_except_last(self):
        windows = split_windows(stream(103), 4)
        assert [len(w) for w in windows] == [25, 25, 25, 28]

    def test_more_windows_than_events(self):
        windows = split_windows(stream(3), 5)
        assert sum(len(w) for w in windows) == 3

    def test_windows_cross_chunk_boundaries(self):
        windows = split_windows(stream(100, chunk=7), 3)
        assert sum(len(w) for w in windows) == 100

    def test_invalid(self):
        with pytest.raises(TraceError):
            split_windows(stream(10), 0)


class TestSampling:
    def test_keep_every_one_is_identity(self):
        s = stream(50)
        sampled = sample_stream(s, 1)
        assert len(sampled) == 50

    def test_systematic(self):
        sampled = sample_stream(stream(100), 10)
        assert len(sampled) == 10
        addrs = sampled.as_batch().addresses
        assert np.array_equal(addrs, np.arange(0, 800, 80, dtype=np.uint64))

    def test_crosses_chunks(self):
        sampled = sample_stream(stream(100, chunk=7), 9)
        expected = np.arange(0, 100, 9) * 8
        assert np.array_equal(
            sampled.as_batch().addresses, expected.astype(np.uint64)
        )

    def test_invalid(self):
        with pytest.raises(TraceError):
            sample_stream(stream(10), 0)


class TestFilterRange:
    def test_keeps_inside(self):
        out = filter_range(stream(100), 80, 160)
        addrs = out.as_batch().addresses
        assert addrs.min() >= 80 and addrs.max() < 160

    def test_invert(self):
        out = filter_range(stream(100), 80, 160, invert=True)
        addrs = out.as_batch().addresses
        assert not ((addrs >= 80) & (addrs < 160)).any()

    def test_invalid(self):
        with pytest.raises(TraceError):
            filter_range(stream(10), 10, 10)


class TestKindFilters:
    def test_loads_only(self):
        out = loads_only(stream(100))
        assert out.stats().stores == 0
        assert out.stats().loads == 50

    def test_stores_only(self):
        out = stores_only(stream(100))
        assert out.stats().loads == 0
        assert out.stats().stores == 50


class TestInterleave:
    def test_round_robin_order(self):
        from repro.trace.filters import interleave_streams

        a = AddressStream.from_arrays([0, 8, 16, 24], 8, 0)
        b = AddressStream.from_arrays([1000, 1008], 8, 1)
        mixed = interleave_streams([a, b], granule=2)
        addrs = mixed.as_batch().addresses.tolist()
        assert addrs == [0, 8, 1000, 1008, 16, 24]

    def test_all_events_preserved(self):
        from repro.trace.filters import interleave_streams

        streams = [stream(37), stream(53), stream(11)]
        mixed = interleave_streams(streams, granule=7)
        assert len(mixed) == 37 + 53 + 11

    def test_single_stream_identity(self):
        from repro.trace.filters import interleave_streams
        import numpy as np

        s = stream(20)
        mixed = interleave_streams([s], granule=3)
        assert np.array_equal(
            mixed.as_batch().addresses, stream(20).as_batch().addresses
        )

    def test_validation(self):
        from repro.trace.filters import interleave_streams

        with pytest.raises(TraceError):
            interleave_streams([])
        with pytest.raises(TraceError):
            interleave_streams([stream(5)], granule=0)


class TestOffset:
    def test_addresses_shifted(self):
        from repro.trace.filters import offset_stream

        shifted = offset_stream(stream(5), 4096)
        assert shifted.as_batch().addresses.tolist() == [
            4096 + 8 * i for i in range(5)
        ]

    def test_negative_rejected(self):
        from repro.trace.filters import offset_stream

        with pytest.raises(TraceError):
            offset_stream(stream(5), -1)

"""Endurance subsystem tests: write tracking, Start-Gap, lifetime."""

import numpy as np
import pytest

from repro.endurance.lifetime import CELL_ENDURANCE, estimate_lifetime
from repro.endurance.startgap import StartGapRemapper
from repro.endurance.writes import WriteTracker
from repro.errors import ModelError, SimulationError
from repro.trace.events import AccessBatch


def store_batch(line_numbers, line=64):
    addrs = np.array(line_numbers, dtype=np.uint64) * np.uint64(line)
    return AccessBatch.from_lists(addrs, line, 1)


class TestWriteTracker:
    def test_counts_stores_only(self):
        tracker = WriteTracker(device_lines=16)
        mixed = AccessBatch.from_lists([0, 64, 128], 64, [1, 0, 1])
        tracker.observe(mixed)
        assert tracker.stats().total_writes == 2

    def test_per_line_attribution(self):
        tracker = WriteTracker(device_lines=16)
        tracker.observe(store_batch([3, 3, 3, 5]))
        assert tracker.writes[3] == 3
        assert tracker.writes[5] == 1

    def test_base_address_and_wrap(self):
        tracker = WriteTracker(device_lines=4, base_address=1024)
        tracker.observe(store_batch([16, 21]))  # lines 16, 21 rel. base 16
        # (16-16)%4 = 0, (21-16)%4 = 1
        assert tracker.writes[0] == 1 and tracker.writes[1] == 1

    def test_stats_imbalance(self):
        tracker = WriteTracker(device_lines=4)
        tracker.observe(store_batch([0] * 8))
        stats = tracker.stats()
        assert stats.max_writes == 8
        assert stats.mean_writes == 2.0
        assert stats.imbalance == 4.0

    def test_empty_device_rejected(self):
        with pytest.raises(SimulationError):
            WriteTracker(device_lines=0)

    def test_empty_stats(self):
        stats = WriteTracker(device_lines=8).stats()
        assert stats.total_writes == 0
        assert stats.imbalance == 1.0


class TestStartGap:
    def test_initial_mapping_identity(self):
        sg = StartGapRemapper(8)
        assert [sg.remap(i) for i in range(8)] == list(range(8))

    def test_mapping_always_bijective(self):
        sg = StartGapRemapper(8, gap_write_interval=1)
        for _ in range(100):
            assert sg.mapping_is_bijective()
            sg.write_performed()

    def test_gap_moves_every_psi_writes(self):
        sg = StartGapRemapper(8, gap_write_interval=10)
        for _ in range(9):
            sg.write_performed()
        assert sg.gap == 8  # not yet
        sg.write_performed()
        assert sg.gap == 7

    def test_start_advances_after_full_sweep(self):
        sg = StartGapRemapper(4, gap_write_interval=1)
        for _ in range(4):
            sg.write_performed()  # gap 4 -> 3 -> 2 -> 1 -> 0
        assert sg.gap == 0 and sg.start == 0
        sg.write_performed()  # wrap: gap back to 4, start -> 1
        assert sg.gap == 4 and sg.start == 1

    def test_overhead_writes_counted(self):
        sg = StartGapRemapper(8, gap_write_interval=5)
        for _ in range(25):
            sg.write_performed()
        assert sg.overhead_writes == 5

    def test_out_of_range_rejected(self):
        sg = StartGapRemapper(8)
        with pytest.raises(SimulationError):
            sg.remap(8)

    def test_invalid_params(self):
        with pytest.raises(SimulationError):
            StartGapRemapper(0)
        with pytest.raises(SimulationError):
            StartGapRemapper(8, gap_write_interval=0)

    def test_levels_hot_line(self):
        """Start-Gap must spread a single-line hot spot over many
        physical lines."""
        n = 32
        no_level = WriteTracker(device_lines=n)
        leveled = WriteTracker(
            device_lines=n,
            remapper=StartGapRemapper(n, gap_write_interval=4),
        )
        hot = store_batch([7] * 2000)
        no_level.observe(hot)
        leveled.observe(hot)
        assert no_level.stats().imbalance == n  # all writes on one line
        assert leveled.stats().imbalance < n / 2
        assert leveled.stats().lines_written >= n // 2


class TestLifetime:
    def wear(self, imbalance):
        from repro.endurance.writes import WearStats

        return WearStats(
            total_writes=1000, lines_written=10, max_writes=int(100 * imbalance),
            mean_writes=100.0, cov=0.0, imbalance=imbalance,
        )

    def test_perfect_leveling_matches_ideal(self):
        est = estimate_lifetime(
            self.wear(1.0), cell_endurance=1e8, device_lines=1000,
            write_rate_per_s=1e6,
        )
        assert est.years == pytest.approx(est.ideal_years)
        assert est.leveling_efficiency == 1.0

    def test_imbalance_divides_lifetime(self):
        even = estimate_lifetime(
            self.wear(1.0), cell_endurance=1e8, device_lines=1000,
            write_rate_per_s=1e6,
        )
        skewed = estimate_lifetime(
            self.wear(50.0), cell_endurance=1e8, device_lines=1000,
            write_rate_per_s=1e6,
        )
        assert skewed.years == pytest.approx(even.years / 50.0)

    def test_overhead_shortens_lifetime(self):
        base = estimate_lifetime(
            self.wear(1.0), cell_endurance=1e8, device_lines=1000,
            write_rate_per_s=1e6,
        )
        with_overhead = estimate_lifetime(
            self.wear(1.0), cell_endurance=1e8, device_lines=1000,
            write_rate_per_s=1e6, overhead_fraction=0.01,
        )
        assert with_overhead.years < base.years

    def test_zero_write_rate_infinite(self):
        est = estimate_lifetime(
            self.wear(1.0), cell_endurance=1e8, device_lines=10,
            write_rate_per_s=0.0,
        )
        assert est.years == float("inf")

    def test_validation(self):
        with pytest.raises(ModelError):
            estimate_lifetime(
                self.wear(1.0), cell_endurance=0, device_lines=10,
                write_rate_per_s=1.0,
            )
        with pytest.raises(ModelError):
            estimate_lifetime(
                self.wear(1.0), cell_endurance=1e8, device_lines=0,
                write_rate_per_s=1.0,
            )

    def test_endurance_table(self):
        assert CELL_ENDURANCE["PCM"] < CELL_ENDURANCE["STTRAM"]

"""Benchmark-suite fixtures.

The benchmarks regenerate every table and figure of the paper at a
reduced scale (so ``pytest benchmarks/ --benchmark-only`` finishes in
minutes) and assert the *shape* claims of the evaluation section.

Environment knobs:

- ``REPRO_BENCH_SCALE``  — capacity/footprint scale (default 1/1024).
- ``REPRO_BENCH_SUITE``  — comma-separated workload subset
  (default: BT,CG,Graph500,Hashing — one stencil, one sparse solver,
  one graph, one table workload; set to ``all`` for the full suite).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import Runner
from repro.workloads.registry import SUITE, get_workload

DEFAULT_SCALE = 1.0 / 1024
DEFAULT_SUITE = "BT,CG,Graph500,Hashing"


def bench_scale() -> float:
    """The scale benchmarks run at."""
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


def bench_suite():
    """The workload subset benchmarks run on."""
    spec = os.environ.get("REPRO_BENCH_SUITE", DEFAULT_SUITE)
    if spec.strip().lower() == "all":
        names = list(SUITE)
    else:
        names = [name.strip() for name in spec.split(",") if name.strip()]
    return [get_workload(name) for name in names]


@pytest.fixture(scope="session")
def runner() -> Runner:
    """One runner for the whole benchmark session: traces and the
    shared L1-L3 simulation are reused by every figure."""
    return Runner(scale=bench_scale(), seed=0)


@pytest.fixture(scope="session")
def workloads():
    """Benchmark workload subset."""
    return bench_suite()


def once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark.

    The experiments are minutes-scale; statistical repetition belongs
    to the micro-benchmarks, not to figure regeneration.
    """
    return benchmark.pedantic(fn, iterations=1, rounds=1)

"""Tables 1–4: regeneration benchmarks + content checks."""

from conftest import once

from repro.experiments.render import ascii_table
from repro.experiments.tables import table1, table2, table3, table4


def test_table1_technologies(benchmark):
    headers, rows = once(benchmark, table1)
    print("\nTable 1")
    print(ascii_table(headers, rows))
    # Paper values, spot-checked.
    by_name = {r[0]: r for r in rows}
    assert by_name["PCM"][2] == "100"  # write delay ns
    assert by_name["HMC"][1] == "0.18"
    assert by_name["eDRAM"][3] == "3.11"


def test_table2_eh_configs(benchmark):
    headers, rows = once(benchmark, table2)
    print("\nTable 2")
    print(ascii_table(headers, rows))
    assert len(rows) == 8
    assert rows[0][1:] == ["16", "64"]


def test_table3_n_configs(benchmark):
    headers, rows = once(benchmark, table3)
    print("\nTable 3")
    print(ascii_table(headers, rows))
    assert len(rows) == 9
    assert rows[0][1] == "128" and rows[-1][2] == "64B"


def test_table4_workloads(benchmark):
    headers, rows = once(benchmark, table4)
    print("\nTable 4")
    print(ascii_table(headers, rows))
    assert len(rows) == 8
    by_bench = {r[1]: r for r in rows}
    assert by_bench["Graph500"][3] == "157"
    assert by_bench["Hashing"][4] == "-m 30M -n 50K"

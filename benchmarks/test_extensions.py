"""Benchmarks for the future-work extensions (endurance, dynamic
partitioning, cost) — the studies the paper's Section VI defers."""

from conftest import once

from repro.designs.configs import N_CONFIGS
from repro.designs.nmm import NMMDesign
from repro.designs.reference import ReferenceDesign
from repro.endurance.startgap import StartGapRemapper
from repro.endurance.writes import WriteTracker
from repro.partition.dynamic import plan_dynamic_partition
from repro.partition.profiler import profile_ranges
from repro.tech.cost import design_capacities_gb, estimate_cost, memory_capital_cost
from repro.tech.params import DRAM, PCM


def test_endurance_startgap_leveling(benchmark, runner, workloads):
    """Start-Gap must reduce wear imbalance on real NVM write streams."""

    def run():
        results = {}
        design = NMMDesign(PCM, N_CONFIGS["N6"], scale=runner.scale,
                           reference=runner.reference)
        for workload in workloads:
            trace = runner.prepare(workload)
            dram_cache = design.lower_caches()[0]
            lines = max(1024, trace.traced_footprint_bytes // 64)
            base = trace.result.stream.stats().min_address
            plain = WriteTracker(lines, base_address=base)
            leveled = WriteTracker(
                lines, base_address=base,
                remapper=StartGapRemapper(lines, gap_write_interval=16),
            )
            for chunk in trace.post_l3.chunks():
                out = dram_cache.process(chunk)
                plain.observe(out)
                leveled.observe(out)
            results[workload.name] = (
                plain.stats(), leveled.stats(),
                leveled.remapper.overhead_writes,
            )
        return results

    results = once(benchmark, run)
    print()
    for name, (plain, leveled, overhead) in results.items():
        print(f"  {name}: imbalance {plain.imbalance:.1f} -> "
              f"{leveled.imbalance:.1f} (+{overhead} overhead writes)")
        if plain.total_writes > 1000:
            assert leveled.imbalance <= plain.imbalance * 1.5


def test_dynamic_partitioning_vs_static(benchmark, runner, workloads):
    """Phase-aware placement with migration accounting over real
    post-L3 streams: report whether dynamic ever wins."""

    def run():
        results = {}
        for workload in workloads:
            trace = runner.prepare(workload)
            profiles = profile_ranges(
                trace.result.stream, trace.result.tracer, coverage=0.99
            )
            if not profiles:
                continue
            plan = plan_dynamic_partition(
                trace.post_l3,
                [p.range for p in profiles],
                dram_tech=DRAM,
                nvm_tech=PCM,
                dram_capacity=max(
                    4096, int(trace.traced_footprint_bytes * 0.25)
                ),
                n_phases=4,
            )
            results[workload.name] = plan
        return results

    results = once(benchmark, run)
    print()
    for name, plan in results.items():
        migrated = sum(p.migrated_bytes for p in plan.phases)
        print(f"  {name}: time gain x{plan.time_gain:.3f} "
              f"energy gain x{plan.energy_gain:.3f} "
              f"migrated {migrated:,} B over {len(plan.phases)} phases")
        # Dynamic may win or lose, but it must never be pathological.
        assert 0.2 < plan.time_gain < 5.0


def test_cost_model_capacity_argument(benchmark, runner, workloads):
    """TCO view of the paper's capacity story: NVM main memory lowers
    the capital cost of footprint-sized memory."""

    def run():
        results = {}
        for workload in workloads:
            footprint = workload.info.footprint_bytes
            ref_design = ReferenceDesign(scale=runner.scale,
                                         reference=runner.reference)
            nmm_design = NMMDesign(PCM, N_CONFIGS["N3"], scale=runner.scale,
                                   reference=runner.reference)
            ref_cost = estimate_cost(
                runner.evaluate(ref_design, workload),
                design_capacities_gb(ref_design, footprint),
            )
            nmm_cost = estimate_cost(
                runner.evaluate(nmm_design, workload),
                design_capacities_gb(nmm_design, footprint),
            )
            results[workload.name] = (ref_cost, nmm_cost)
        return results

    results = once(benchmark, run)
    print()
    for name, (ref_cost, nmm_cost) in results.items():
        print(f"  {name}: REF ${ref_cost.total_dollars:,.0f} "
              f"(capital ${ref_cost.capital_dollars:,.0f}) vs "
              f"NMM-PCM ${nmm_cost.total_dollars:,.0f} "
              f"(capital ${nmm_cost.capital_dollars:,.0f})")
        assert nmm_cost.capital_dollars < ref_cost.capital_dollars


def test_deep_hybrid_design_point(benchmark, runner, workloads):
    """The unexplored 6-level point (L4 + DRAM$ + NVM): it should
    recover most of 4LCNVM's runtime exposure while keeping most of its
    energy advantage over the DRAM baseline."""
    from repro.designs.configs import EH_CONFIGS
    from repro.designs.deephybrid import DeepHybridDesign
    from repro.designs.fourlcnvm import FourLCNVMDesign
    from repro.tech.params import EDRAM

    def run():
        designs = {
            "NMM": NMMDesign(PCM, N_CONFIGS["N6"], scale=runner.scale,
                             reference=runner.reference),
            "4LCNVM": FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH1"],
                                      scale=runner.scale,
                                      reference=runner.reference),
            "DEEP": DeepHybridDesign(EDRAM, PCM, EH_CONFIGS["EH1"],
                                     N_CONFIGS["N6"], scale=runner.scale,
                                     reference=runner.reference),
        }
        results = {}
        for label, design in designs.items():
            evaluations = [runner.evaluate(design, w) for w in workloads]
            results[label] = (
                sum(e.time_norm for e in evaluations) / len(evaluations),
                sum(e.energy_norm for e in evaluations) / len(evaluations),
            )
        return results

    results = once(benchmark, run)
    print()
    for label, (time_norm, energy_norm) in results.items():
        print(f"  {label:8s} time x{time_norm:.3f}  energy x{energy_norm:.3f}")
    # The deep hierarchy must soften 4LCNVM's NVM latency exposure...
    assert results["DEEP"][0] <= results["4LCNVM"][0] + 0.02
    # ...while keeping a clear energy win over the DRAM baseline.
    assert results["DEEP"][1] < 1.0

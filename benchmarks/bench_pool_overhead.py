"""Supervised-pool overhead benchmark.

Prices what supervision costs on a fault-free sweep: the supervised
pool (persistent workers, per-cell dispatch, heartbeats, per-cell
journalling) against the legacy whole-shard ``ProcessPoolExecutor``
path and against a serial run of the same campaign. Supervision buys
crash recovery, work stealing and exact resume; this benchmark keeps
its price visible so a regression in the dispatch loop shows up as a
number, not as a vague "sweeps feel slower".

Non-gating: the script reports and records, it does not fail the
build. Wall times of multiprocess sweeps on shared CI runners are too
noisy for a hard threshold; the committed JSON is the trend record.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_pool_overhead.py

Environment knobs: ``REPRO_BENCH_SCALE`` (default 1/1024) and
``REPRO_BENCH_REPS`` (default 3; min-of-reps is reported).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.designs.configs import EH_CONFIGS, N_CONFIGS
from repro.designs.fourlc import FourLCDesign
from repro.designs.nmm import NMMDesign
from repro.experiments.runner import Runner
from repro.resilience import Journal, SweepExecutor
from repro.tech.params import EDRAM, PCM
from repro.workloads.registry import get_workload

DEFAULT_SCALE = 1.0 / 1024
DEFAULT_REPS = 3
WORKLOADS = ("CG", "SP")


def usable_cpus() -> int:
    return len(os.sched_getaffinity(0))


def make_designs(runner: Runner, scale: float):
    return [
        NMMDesign(PCM, N_CONFIGS["N6"], scale=scale,
                  reference=runner.reference),
        FourLCDesign(EDRAM, EH_CONFIGS["EH4"], scale=scale,
                     reference=runner.reference),
    ]


def run_campaign(scale: float, trace_cache: str, *, workers: int,
                 supervise: bool) -> float:
    """One full campaign with a fresh journal; returns wall seconds.

    The shared trace cache is warmed before timing starts, so every
    variant measures dispatch + simulation, not trace generation.
    """
    scratch = tempfile.mkdtemp(prefix="bench-pool-")
    try:
        runner = Runner(scale=scale, seed=0, trace_cache_dir=trace_cache)
        designs = make_designs(runner, scale)
        workloads = [get_workload(name) for name in WORKLOADS]
        executor = SweepExecutor(
            runner, journal=Journal(Path(scratch) / "j.jsonl"),
            workers=workers, supervise=supervise,
        )
        start = time.perf_counter()
        result = executor.run(designs, workloads)
        elapsed = time.perf_counter() - start
        if result.failures:
            raise RuntimeError(f"benchmark campaign degraded: "
                               f"{result.report()}")
        return elapsed
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def measure(scale: float, trace_cache: str, reps: int) -> dict:
    """Min-of-reps wall time for serial, legacy-shard and supervised.

    Variants are interleaved (one rep of each per round) so slow
    drift on a shared machine hits all three equally.
    """
    variants = {
        "serial": dict(workers=1, supervise=True),
        "legacy_shards": dict(workers=2, supervise=False),
        "supervised": dict(workers=2, supervise=True),
    }
    times: dict[str, list[float]] = {name: [] for name in variants}
    for _ in range(reps):
        for name, kwargs in variants.items():
            times[name].append(run_campaign(scale, trace_cache, **kwargs))
    serial = min(times["serial"])
    legacy = min(times["legacy_shards"])
    supervised = min(times["supervised"])
    return {
        "serial_s": round(serial, 3),
        "legacy_shards_s": round(legacy, 3),
        "supervised_s": round(supervised, 3),
        "supervised_vs_legacy_pct": round(
            (supervised / legacy - 1.0) * 100.0, 2),
        "supervised_speedup_vs_serial": round(serial / supervised, 3),
        "reps": reps,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=str, default="BENCH_pool.json",
        help="output JSON path (default: BENCH_pool.json)",
    )
    args = parser.parse_args(argv)
    cpus = usable_cpus()
    if cpus < 2:
        # An honest skip beats a fake number: with one usable CPU the
        # parallel variants just timeshare and the comparison is noise.
        print(f"skip: only {cpus} usable CPU(s); pool overhead needs >= 2")
        return 0

    scale = float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))
    reps = int(os.environ.get("REPRO_BENCH_REPS", DEFAULT_REPS))
    trace_cache = tempfile.mkdtemp(prefix="bench-pool-traces-")
    try:
        print(f"warming trace cache at scale {scale:g} ...", flush=True)
        runner = Runner(scale=scale, seed=0, trace_cache_dir=trace_cache)
        for name in WORKLOADS:
            runner.prepare(get_workload(name))

        print(f"timing campaigns ({reps} rep(s) per variant) ...",
              flush=True)
        result = measure(scale, trace_cache, reps)
    finally:
        shutil.rmtree(trace_cache, ignore_errors=True)
    result["scale"] = scale
    result["cells"] = 2 * len(WORKLOADS)

    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    print(f"  serial         {result['serial_s']:8.3f}s")
    print(f"  legacy shards  {result['legacy_shards_s']:8.3f}s")
    print(f"  supervised     {result['supervised_s']:8.3f}s  "
          f"({result['supervised_vs_legacy_pct']:+.1f}% vs legacy, "
          f"{result['supervised_speedup_vs_serial']:.2f}x vs serial)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

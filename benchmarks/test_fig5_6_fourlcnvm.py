"""Figures 5 & 6: 4LCNVM (eDRAM/HMC over NVM, no DRAM) across EH1–EH8.

Shape claims checked (paper, Section V + conclusions):
- page size comparable to the line size gives the large energy savings
  (paper: ~57% at EH1; overall design headline ~47%);
- energy grows with page size, mirroring 4LC;
- the combined design achieves the deepest energy savings of all
  designs evaluated (checked against the 4LC EH1 result).
"""

from conftest import once

from repro.experiments.figures import figure4, figure5, figure6
from repro.experiments.render import render_figure


def test_figure5_fourlcnvm_runtime(benchmark, runner, workloads):
    fig = once(benchmark, lambda: figure5(runner, workloads=workloads))
    print("\n" + render_figure(fig))
    for pair, series in fig.series.items():
        # Overheads are bounded and EH1/EH2/EH6 are among the better
        # configurations (the sweep is shallow in time).
        assert max(series.values()) < 2.5, pair
        best = min(series, key=series.get)
        assert best in ("EH1", "EH2", "EH6"), (pair, best)


def test_figure6_fourlcnvm_energy(benchmark, runner, workloads):
    fig = once(benchmark, lambda: figure6(runner, workloads=workloads))
    print("\n" + render_figure(fig))
    for pair, series in fig.series.items():
        assert series["EH6"] > series["EH1"], pair  # page growth costs energy
    # The paper's flagship claim: with 64 B pages, big energy savings.
    pcm_pairs = [p for p in fig.series if p.endswith("/PCM")]
    for pair in pcm_pairs:
        assert fig.series[pair]["EH1"] < 0.7, pair  # >30% savings


def test_fourlcnvm_saves_more_than_fourlc(benchmark, runner, workloads):
    """Combining L4 + NVM must beat L4 alone on energy (the design's
    purpose: also remove the DRAM's static power)."""
    f4, f6 = once(
        benchmark,
        lambda: (
            figure4(runner, workloads=workloads),
            figure6(runner, workloads=workloads),
        ),
    )
    fourlc_best = min(
        value for series in f4.series.values() for value in series.values()
    )
    fourlcnvm_best = min(
        value for series in f6.series.values() for value in series.values()
    )
    assert fourlcnvm_best < fourlc_best

"""Methodology benchmark: the scaling approach itself.

DESIGN.md §4 claims that geometric capacity/footprint scaling preserves
the *ordering* of configurations even as absolute overheads drift. This
benchmark runs the same NMM capacity comparison at two scales an octave
apart and asserts the design-space conclusions are scale-stable — the
property that justifies drawing paper-level conclusions from
laptop-size simulation.
"""

from conftest import bench_suite, once

from repro.designs.configs import N_CONFIGS
from repro.designs.nmm import NMMDesign
from repro.experiments.runner import Runner
from repro.tech.params import PCM


def test_scale_stability_of_conclusions(benchmark):
    workloads = bench_suite()[:2]  # two workloads keep the double run fast
    scales = (1.0 / 1024, 1.0 / 2048)
    configs = ("N1", "N3", "N6", "N9")

    def run():
        results = {}
        for scale in scales:
            runner = Runner(scale=scale, seed=0)
            per_config = {}
            for cfg in configs:
                design = NMMDesign(PCM, N_CONFIGS[cfg], scale=scale,
                                   reference=runner.reference)
                evaluations = [
                    runner.evaluate(design, w) for w in workloads
                ]
                per_config[cfg] = (
                    sum(e.time_norm for e in evaluations) / len(evaluations),
                    sum(e.energy_norm for e in evaluations) / len(evaluations),
                )
            results[scale] = per_config
        return results

    results = once(benchmark, run)
    print()
    for scale, per_config in results.items():
        line = " ".join(
            f"{cfg}: t={t:.3f}/e={e:.3f}" for cfg, (t, e) in per_config.items()
        )
        print(f"  scale 1/{round(1 / scale)}: {line}")

    for scale, per_config in results.items():
        # Conclusion 1: more DRAM-cache capacity helps runtime.
        assert per_config["N3"][0] < per_config["N1"][0], scale
        # Conclusion 2: the mid-page sweet spot saves energy vs N1.
        assert per_config["N6"][1] < per_config["N1"][1], scale

    # The winning region of the design space agrees across scales:
    # a mid-capacity/mid-page configuration tops the energy ranking at
    # both (exact ranks of near-tied neighbours may swap — absolute
    # values drift ~5% per octave of scale, see EXPERIMENTS.md).
    winners = {
        scale: min(configs, key=lambda c: per_config[c][1])
        for scale, per_config in results.items()
    }
    assert set(winners.values()) <= {"N3", "N6"}, winners

"""Reuse-distance microbenchmark: vectorized CDQ vs Fenwick reference.

Times :func:`repro.trace.reuse.reuse_distances` (the offline
divide-and-conquer pass the analytic engine's profiler is built on)
against :func:`repro.trace.reuse.reuse_distances_fenwick` (the
per-access Bennett–Kruskal loop kept as the bit-exact oracle) across
stream shapes with very different run/locality structure:

- ``random``   — uniform over a footprint much larger than any cache;
  every access is a run head, worst case for the run-collapse shortcut.
- ``zipf``     — skewed popularity, the common in-between.
- ``strided``  — sequential sweeps; at line granularity almost every
  access repeats the previous line, best case for run collapse.
- ``traced``   — the real CG post-L3 stream at benchmark scale.

Every pair of results is asserted bit-identical before timing is
reported, so the table doubles as a differential check. Informational
only — no committed baseline, no CI gate; the gated end-to-end number
lives in ``bench_sim_throughput.py`` (the analytic sweep measurement).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_reuse_profile.py

``REPRO_BENCH_EVENTS`` overrides the synthetic stream length (default
100k; the Fenwick loop is pure Python, so budget ~20s per 100k events).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.experiments.runner import Runner
from repro.trace.reuse import reuse_distances, reuse_distances_fenwick
from repro.trace.stream import AddressStream
from repro.workloads.registry import get_workload

DEFAULT_EVENTS = 100_000
LINE = 64
TRACED_SCALE = 1.0 / 1024


def synthetic_streams(events: int) -> dict[str, AddressStream]:
    rng = np.random.default_rng(7)
    footprint_lines = max(events // 4, 1)
    random_addrs = rng.integers(0, footprint_lines, events) * LINE
    zipf_addrs = (
        np.minimum(rng.zipf(1.3, events), footprint_lines) - 1
    ) * LINE
    # Four interleaved sequential sweeps, 8 B elements: consecutive
    # accesses mostly share a line.
    base = (np.arange(events) // 4) * 8
    lane = (np.arange(events) % 4) * (footprint_lines // 4) * LINE
    strided_addrs = base + lane
    return {
        "random": AddressStream.from_arrays(random_addrs, 8, 0),
        "zipf": AddressStream.from_arrays(zipf_addrs, 8, 0),
        "strided": AddressStream.from_arrays(strided_addrs, 8, 0),
    }


def traced_stream() -> AddressStream:
    runner = Runner(scale=TRACED_SCALE, seed=0)
    return runner.prepare(get_workload("CG")).post_l3


def main() -> int:
    events = int(os.environ.get("REPRO_BENCH_EVENTS", DEFAULT_EVENTS))
    streams = synthetic_streams(events)
    print(f"tracing CG at scale {TRACED_SCALE:g} ...", flush=True)
    streams["traced"] = traced_stream()

    print(f"{'stream':<10} {'events':>9} {'fenwick':>9} {'cdq':>9} "
          f"{'speedup':>8}")
    for name, stream in streams.items():
        t0 = time.perf_counter()
        reference = reuse_distances_fenwick(stream, LINE)
        t_fenwick = time.perf_counter() - t0
        t0 = time.perf_counter()
        vectorized = reuse_distances(stream, LINE)
        t_cdq = time.perf_counter() - t0
        if not np.array_equal(reference, vectorized):
            print(f"FAIL: {name}: CDQ diverges from the Fenwick oracle")
            return 1
        print(f"{name:<10} {len(stream):>9} {t_fenwick:>8.3f}s "
              f"{t_cdq:>8.3f}s {t_fenwick / t_cdq:>7.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

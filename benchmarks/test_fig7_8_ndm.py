"""Figures 7 & 8: NDM (partitioned DRAM+NVM) with the placement oracle.

Shape claims checked (paper, Section V + conclusions):
- every workload pays a runtime overhead under NDM (paper: 5–63%);
- energy savings occur exactly for the workloads whose static energy
  dominates their dynamic energy (paper names Velvet, Hashing, AMG,
  Graph500 as savers);
- the oracle finds 2–3 candidate ranges per workload ("Typically we
  found 2 or 3 address ranges in each workload").
"""

from conftest import once

from repro.experiments.figures import figure7, figure8
from repro.experiments.render import render_figure
from repro.partition.profiler import profile_ranges
from repro.tech.params import PCM


def test_figure7_ndm_runtime(benchmark, runner, workloads):
    fig = once(benchmark, lambda: figure7(runner, workloads=workloads))
    print("\n" + render_figure(fig))
    for tech, series in fig.series.items():
        for workload, value in series.items():
            assert value >= 1.0, (tech, workload)  # overhead everywhere
            assert value < 3.0, (tech, workload)  # but bounded


def test_figure8_ndm_energy_static_dynamic_split(benchmark, runner, workloads):
    fig = once(benchmark, lambda: figure8(runner, workloads=workloads))
    print("\n" + render_figure(fig))
    # The static-energy-dominated data-centric workloads save energy.
    savers = {"Hashing", "Graph500", "Velvet", "AMG2013"}
    for tech, series in fig.series.items():
        for workload, value in series.items():
            if workload in savers:
                assert value < 1.0, (tech, workload)


def test_oracle_finds_few_ranges(benchmark, runner, workloads):
    """The paper's '2 or 3 address ranges per workload' observation."""

    def run():
        counts = {}
        for workload in workloads:
            trace = runner.prepare(workload)
            profiles = profile_ranges(trace.result.stream, trace.result.tracer)
            counts[workload.name] = len(profiles)
        return counts

    counts = once(benchmark, run)
    print()
    for name, count in counts.items():
        print(f"  {name}: {count} candidate ranges")
        assert 1 <= count <= 8, name


def test_oracle_best_placement_routes_bulk_to_nvm(benchmark, runner, workloads):
    """The winning placements put the bulk of the footprint in NVM
    (that is NDM's capacity story — DRAM is only 512 MB)."""
    workload = workloads[0]
    placements = once(benchmark, lambda: runner.ndm_oracle(workload, PCM))
    best = placements[0]
    trace = runner.prepare(workload)
    nvm_bytes = sum(r.size for r in best.nvm_ranges)
    assert nvm_bytes > 0.2 * trace.traced_footprint_bytes

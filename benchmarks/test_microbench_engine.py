"""Micro-benchmarks of the simulator substrate itself.

Unlike the figure benchmarks (run-once experiments) these measure hot
paths statistically — pytest-benchmark's natural mode — so simulator
performance regressions are visible.
"""

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.hierarchy import Hierarchy
from repro.cache.mainmem import MainMemory
from repro.cache.setassoc import SetAssociativeCache
from repro.trace.stream import AddressStream
from repro.trace.synthetic import random_stream, sequential_stream
from repro.trace.tracer import Tracer
from repro.units import KiB, MiB

N_EVENTS = 200_000


def test_engine_sequential_throughput(benchmark):
    """Run-length collapse makes sequential streams the fast path."""
    stream = sequential_stream(N_EVENTS)
    batches = list(stream.chunks())

    def run():
        cache = SetAssociativeCache(CacheConfig("L1", 32 * KiB, 8, 64))
        for batch in batches:
            cache.process(batch)
        return cache.stats.accesses

    assert benchmark(run) == N_EVENTS


def test_engine_random_throughput(benchmark):
    """Random streams defeat collapsing: the worst-case loop."""
    stream = random_stream(N_EVENTS, footprint_bytes=8 * MiB, seed=1)
    batches = list(stream.chunks())

    def run():
        cache = SetAssociativeCache(CacheConfig("L1", 32 * KiB, 8, 64))
        for batch in batches:
            cache.process(batch)
        return cache.stats.accesses

    assert benchmark(run) == N_EVENTS


def test_sectored_page_cache_throughput(benchmark):
    stream = random_stream(N_EVENTS, footprint_bytes=8 * MiB, seed=1, access_size=64)
    batches = list(stream.chunks())

    def run():
        cache = SetAssociativeCache(
            CacheConfig("P", 1 * MiB, 8, 2048, sector_size=64, hashed_sets=True)
        )
        for batch in batches:
            cache.process(batch)
        return cache.stats.accesses

    assert benchmark(run) == N_EVENTS


def test_full_hierarchy_throughput(benchmark):
    stream = random_stream(N_EVENTS, footprint_bytes=4 * MiB, seed=2, store_fraction=0.3)

    def run():
        h = Hierarchy(
            [
                SetAssociativeCache(CacheConfig("L1", 32 * KiB, 8, 64)),
                SetAssociativeCache(CacheConfig("L2", 256 * KiB, 8, 64)),
                SetAssociativeCache(CacheConfig("L3", 1 * MiB, 16, 64)),
            ],
            MainMemory("DRAM"),
        )
        return h.run(stream).references

    assert benchmark(run) == N_EVENTS


def test_traced_array_recording_overhead(benchmark):
    """Vectorized recording cost per element access."""

    def run():
        tracer = Tracer()
        a = tracer.array("a", (100_000,))
        idx = np.arange(100_000)
        _ = a[idx]
        return len(tracer.stream)

    assert benchmark(run) == 100_000


def test_stream_append_throughput(benchmark):
    addrs = np.arange(N_EVENTS, dtype=np.uint64)

    def run():
        stream = AddressStream()
        for start in range(0, N_EVENTS, 4096):
            stream.append(addrs[start : start + 4096], 8, 0)
        return len(stream)

    assert benchmark(run) == N_EVENTS

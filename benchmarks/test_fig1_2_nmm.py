"""Figures 1 & 2: NMM runtime/energy across N1–N9.

Shape claims checked (paper, Section V):
- increasing DRAM-cache capacity (N1→N3) reduces runtime for every NVM;
- smaller pages reduce total energy (dynamic shrinks faster than static
  grows);
- N6 beats N5 on EDP ("if we consider EDP, N6 is more efficient than
  N5");
- STT-RAM (symmetric latency) is never slower than FeRAM (asymmetric,
  higher latencies) on average.
"""

from conftest import once

from repro.experiments.figures import figure1, figure2
from repro.experiments.render import render_figure
from repro.tech.params import FERAM, PCM, STTRAM


def test_figure1_nmm_runtime(benchmark, runner, workloads):
    fig = once(benchmark, lambda: figure1(runner, workloads=workloads))
    print("\n" + render_figure(fig))
    for tech in ("PCM", "STTRAM", "FeRAM"):
        series = fig.series[tech]
        # Capacity helps: N1 (128 MB) -> N3 (512 MB) at fixed 4 KB pages.
        assert series["N3"] < series["N1"], tech
        # The hierarchy adds NVM below DRAM: runtime cannot drop below
        # a little under parity.
        assert all(v > 0.9 for v in series.values()), tech
    # Symmetric STT-RAM vs slow asymmetric FeRAM.
    assert sum(fig.series["STTRAM"].values()) < sum(fig.series["FeRAM"].values())


def test_figure2_nmm_energy(benchmark, runner, workloads):
    fig = once(benchmark, lambda: figure2(runner, workloads=workloads))
    print("\n" + render_figure(fig))
    for tech in ("PCM", "STTRAM", "FeRAM"):
        series = fig.series[tech]
        # The energy minimum lies at a sub-4KB page (the paper's best
        # is N6 at 512 B), and shrinking pages from N1/N3 saves energy.
        best = min(series, key=series.get)
        assert best in ("N4", "N5", "N6", "N7", "N8", "N9"), (tech, best)
        assert series[best] < series["N3"] + 1e-9, tech
        # Small-page configurations reach real energy savings.
        assert series[best] < 1.0, tech


def test_nmm_edp_n6_beats_n5(benchmark, runner, workloads):
    """The paper's explicit EDP claim."""
    from repro.designs.configs import N_CONFIGS
    from repro.designs.nmm import NMMDesign

    def run():
        out = {}
        for tech in (PCM, STTRAM, FERAM):
            edp = {}
            for cfg in ("N5", "N6"):
                design = NMMDesign(
                    tech, N_CONFIGS[cfg], scale=runner.scale,
                    reference=runner.reference,
                )
                evaluations = [runner.evaluate(design, w) for w in workloads]
                edp[cfg] = sum(e.edp_norm for e in evaluations) / len(evaluations)
            out[tech.name] = edp
        return out

    results = once(benchmark, run)
    print()
    for tech_name, edp in results.items():
        print(f"  {tech_name}: EDP(N5)={edp['N5']:.3f} EDP(N6)={edp['N6']:.3f}")
        # Strict for PCM (the paper's primary NVM); within a 2%
        # tie-tolerance for the others at the reduced benchmark scale.
        if tech_name == "PCM":
            assert edp["N6"] < edp["N5"]
        else:
            assert edp["N6"] <= edp["N5"] * 1.02, tech_name

"""Figures 3 & 4: 4LC (eDRAM/HMC fourth-level cache) across EH1–EH8.

Shape claims checked (paper, Section V):
- runtime stays within a narrow band across page sizes ("fluctuates
  within a band of 2%"), HMC at or below parity;
- increasing the page size increases dynamic and hence total energy;
- EH1 (64 B pages) is the best-energy configuration.
"""

from conftest import once

from repro.experiments.figures import figure3, figure4
from repro.experiments.render import render_figure


def test_figure3_fourlc_runtime(benchmark, runner, workloads):
    fig = once(benchmark, lambda: figure3(runner, workloads=workloads))
    print("\n" + render_figure(fig))
    for tech, series in fig.series.items():
        values = list(series.values())
        band = max(values) - min(values)
        assert band < 0.10, f"{tech}: runtime band {band:.3f} too wide"
    # HMC's near-zero latency gives the better runtime of the two.
    assert sum(fig.series["HMC"].values()) < sum(fig.series["eDRAM"].values())
    assert min(fig.series["HMC"].values()) < 1.0


def test_figure4_fourlc_energy(benchmark, runner, workloads):
    fig = once(benchmark, lambda: figure4(runner, workloads=workloads))
    print("\n" + render_figure(fig))
    for tech, series in fig.series.items():
        # Energy grows with page size at fixed 16 MB capacity (EH1->EH6).
        assert series["EH6"] > series["EH1"], tech
        # EH1 is the best configuration of the sweep.
        assert min(series, key=series.get) in ("EH1", "EH2"), tech

"""Trace store benchmark and regression gate.

Three measurements, one committed baseline (``BENCH_trace.json``):

1. **Load throughput** — reading a cached trace back, v1 vs v2. The v1
   path hashes the whole ``.npz`` against its sidecar and decompresses
   every event into private memory; the v2 path opens the mmap store
   lazily (prelude + header digest only). The committed floor asserts
   the lazy open is >= 5x faster than the v1 load; the CI gate also
   re-measures the v2 *verified scan* (every chunk digest checked,
   every byte mapped) and fails on a >15% normalized regression
   against the baseline, after dividing out machine speed with a
   fixed SHA-256 calibration loop.
2. **Arena memory ratio** — four forked workers attach one published
   trace and touch every byte while all four are alive; each reports
   the Pss growth from ``/proc/self/smaps_rollup``. Shared pages split
   their cost across attachers, so the summed growth of an
   arena-backed sweep stays at ~1 single copy (committed floor:
   <= 1.2x) where per-worker v1 loads pay ~1 copy *each* (recorded
   alongside, ~4x). Hosts without ``smaps_rollup`` record an honest
   skip reason instead of a number.
3. **Sampled fidelity** — per design family (NMM, 4LC, 4LC-NVM), the
   absolute per-level hit-rate error of a ``warmup:window:stride``
   sampled simulation against the exact replay of the same trace.
   Committed floor: max error <= 0.02 in every family, with the
   measured fraction recorded so the trade is visible.

Run from the repo root to (re)write the baseline::

    PYTHONPATH=src python benchmarks/bench_trace_store.py

Run the CI gate (quick mode, read-only)::

    PYTHONPATH=src python -m pytest -q -m perf benchmarks/bench_trace_store.py

Environment knobs: ``REPRO_BENCH_SCALE`` (default 1/1024),
``REPRO_BENCH_REPS`` (default 3).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_trace.json"
DEFAULT_SCALE = 1.0 / 1024
DEFAULT_REPS = 3
#: CI gate: normalized v2 verified-scan throughput may not drop more.
REGRESSION_TOLERANCE = 0.15
#: Committed floor: lazy v2 open vs full v1 load.
MIN_OPEN_SPEEDUP = 5.0
#: Committed ceiling: summed worker Pss growth over one trace copy.
MAX_ARENA_RATIO = 1.2
#: Committed ceiling: sampled-vs-exact per-level hit-rate error.
MAX_SAMPLE_ERROR = 0.02
ARENA_WORKERS = 4
ARENA_EVENTS = 4_000_000
LOAD_WORKLOAD = "CG"
SAMPLE_SPEC = "500:2000:5000"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


def bench_reps() -> int:
    return int(os.environ.get("REPRO_BENCH_REPS", DEFAULT_REPS))


def calibrate() -> float:
    """Machine-speed score for the load path: SHA-256 bytes/s over a
    fixed buffer. Hashing dominates both the v1 sidecar check and the
    v2 chunk verification, so normalizing by this keeps the regression
    gate about the *code*, not the host."""
    payload = np.random.RandomState(0).bytes(32 * 1024 * 1024)
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        hashlib.sha256(payload).digest()
        best = min(best, time.perf_counter() - start)
    return len(payload) / best


# ----------------------------------------------------------------------
# 1. Load throughput
# ----------------------------------------------------------------------


def measure_load(scale: float, reps: int) -> dict:
    """v1 full load vs v2 lazy open vs v2 verified scan, best-of-reps."""
    from repro.experiments.runner import Runner
    from repro.trace.io import load_stream, save_stream
    from repro.workloads.registry import get_workload

    with tempfile.TemporaryDirectory() as tmp:
        runner = Runner(scale=scale, seed=0, trace_cache_dir=tmp)
        result, _ = runner.trace_only(get_workload(LOAD_WORKLOAD))
        stream = result.stream
        events = len(stream)
        nbytes = stream.nbytes
        v1_path = Path(tmp) / "bench.stream.npz"
        v2_path = Path(tmp) / "bench.stream.rts"
        save_stream(stream, v1_path, version=1)
        save_stream(stream, v2_path, version=2)

        v1_load = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            loaded = load_stream(v1_path)
            v1_load = min(v1_load, time.perf_counter() - start)
        v1_events = len(loaded)

        v2_open = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            mapped = load_stream(v2_path)
            v2_open = min(v2_open, time.perf_counter() - start)
            mapped.close()

        v2_scan = float("inf")
        for _ in range(reps):
            mapped = load_stream(v2_path)
            start = time.perf_counter()
            mapped.verify()
            v2_scan = min(v2_scan, time.perf_counter() - start)
            mapped.close()

        if v1_events != events:
            raise RuntimeError("v1 round-trip lost events")

    return {
        "workload": LOAD_WORKLOAD,
        "events": events,
        "stream_bytes": nbytes,
        "v1_load_s": round(v1_load, 6),
        "v2_open_s": round(v2_open, 6),
        "v2_verified_scan_s": round(v2_scan, 6),
        "open_speedup": round(v1_load / v2_open, 3),
        "scan_events_per_sec": round(events / v2_scan),
        "min_open_speedup": MIN_OPEN_SPEEDUP,
    }


# ----------------------------------------------------------------------
# 2. Arena memory ratio
# ----------------------------------------------------------------------


def _pss_kb() -> int | None:
    """Proportional-set-size of this process in kB, or None."""
    try:
        text = Path("/proc/self/smaps_rollup").read_text()
    except OSError:
        return None
    for line in text.splitlines():
        if line.startswith("Pss:"):
            return int(line.split()[1])
    return None


def _touch(stream) -> int:
    """Read every byte of every chunk (fault all pages in)."""
    total = 0
    for chunk in stream.chunks():
        total += int(np.add.reduce(chunk.addresses, dtype=np.uint64))
        total += int(np.add.reduce(chunk.sizes, dtype=np.uint64))
        total += int(np.add.reduce(chunk.is_store, dtype=np.uint64))
    return total


def _arena_child(handle, ready, done, queue) -> None:
    before = _pss_kb()
    stream, _ = handle.attach()
    _touch(stream)
    ready.wait()  # every sibling has faulted its pages in
    after = _pss_kb()
    queue.put(after - before)
    done.wait()  # measure while all attachers are still alive


def _private_child(npz_path, ready, done, queue) -> None:
    from repro.trace.io import load_stream

    before = _pss_kb()
    stream = load_stream(npz_path)
    _touch(stream)
    ready.wait()
    after = _pss_kb()
    queue.put(after - before)
    done.wait()
    del stream


def _fan_out(target, arg) -> list[int]:
    # Spawned (not forked) children: a fork would inherit the parent's
    # arena mapping, hiding the attach cost inside the baseline Pss.
    ctx = multiprocessing.get_context("spawn")
    ready = ctx.Barrier(ARENA_WORKERS)
    done = ctx.Barrier(ARENA_WORKERS)
    queue = ctx.Queue()
    procs = [
        ctx.Process(target=target, args=(arg, ready, done, queue))
        for _ in range(ARENA_WORKERS)
    ]
    for proc in procs:
        proc.start()
    deltas = [queue.get(timeout=600) for _ in procs]
    for proc in procs:
        proc.join(timeout=600)
        if proc.exitcode != 0:
            raise RuntimeError(f"arena child exited {proc.exitcode}")
    return deltas


def measure_arena() -> dict:
    """Summed worker Pss growth for one shared trace vs private copies.

    All workers hold their mapping at measurement time (barriers), so
    shared pages split their Pss across the attachers and the sum
    approximates total committed memory. The ``skipped`` form is
    recorded verbatim when the host can't report Pss.
    """
    if _pss_kb() is None:
        return {
            "workers": ARENA_WORKERS,
            "ratio": None,
            "max_ratio": MAX_ARENA_RATIO,
            "skipped": "/proc/self/smaps_rollup unavailable; per-process "
                       "Pss cannot be measured on this host",
        }
    from repro.trace.arena import TraceArena
    from repro.trace.io import save_stream
    from repro.trace.synthetic import random_stream

    stream = random_stream(
        ARENA_EVENTS, footprint_bytes=1 << 28, store_fraction=0.3, seed=13
    )
    nbytes = stream.nbytes
    with tempfile.TemporaryDirectory() as tmp:
        npz_path = Path(tmp) / "arena.stream.npz"
        save_stream(stream, npz_path, version=1)
        with TraceArena() as arena:
            handle = arena.publish("ARENA", stream, ())
            arena_kb = _fan_out(_arena_child, handle)
        private_kb = _fan_out(_private_child, npz_path)

    arena_bytes = sum(arena_kb) * 1024
    private_bytes = sum(private_kb) * 1024
    return {
        "workers": ARENA_WORKERS,
        "events": ARENA_EVENTS,
        "single_copy_bytes": nbytes,
        "handle_kind": handle.kind,
        "arena_worker_pss_kb": arena_kb,
        "private_worker_pss_kb": private_kb,
        "arena_total_bytes": arena_bytes,
        "private_total_bytes": private_bytes,
        "ratio": round(arena_bytes / nbytes, 3),
        "private_ratio": round(private_bytes / nbytes, 3),
        "max_ratio": MAX_ARENA_RATIO,
    }


# ----------------------------------------------------------------------
# 3. Sampled fidelity
# ----------------------------------------------------------------------


def sample_families(reference, scale) -> list:
    from repro.designs.configs import EH_CONFIGS, N_CONFIGS
    from repro.designs.fourlc import FourLCDesign
    from repro.designs.fourlcnvm import FourLCNVMDesign
    from repro.designs.nmm import NMMDesign
    from repro.tech.params import EDRAM, PCM

    return [
        ("NMM", NMMDesign(PCM, N_CONFIGS["N6"], scale=scale,
                          reference=reference)),
        ("4LC", FourLCDesign(EDRAM, EH_CONFIGS["EH4"], scale=scale,
                             reference=reference)),
        ("4LCNVM", FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH4"],
                                   scale=scale, reference=reference)),
    ]


def measure_sampled(scale: float) -> dict:
    """Per-family max |hit-rate error| of sampled vs exact simulation."""
    from repro.experiments.runner import Runner
    from repro.workloads.registry import get_workload

    workload = get_workload(LOAD_WORKLOAD)
    with tempfile.TemporaryDirectory() as tmp:
        exact = Runner(scale=scale, seed=0, trace_cache_dir=tmp)
        sampled = Runner(scale=scale, seed=0, trace_cache_dir=tmp,
                         sample=SAMPLE_SPEC)
        rows = []
        for family, design in sample_families(exact.reference, scale):
            he = exact.stats_for(design, workload)
            hs = sampled.stats_for(design, workload)
            error = max(
                (abs(le.hit_rate - ls.hit_rate)
                 for le, ls in zip(he.levels, hs.levels)
                 if le.loads + le.stores > 0),
                default=0.0,
            )
            rows.append({
                "family": family,
                "design": design.name,
                "max_hit_rate_error": round(error, 6),
                "references_error_rel": round(
                    abs(hs.references - he.references)
                    / max(1, he.references), 6
                ),
            })
        fidelity = sampled.prepare(workload).sample_fidelity
    return {
        "workload": LOAD_WORKLOAD,
        "sample": SAMPLE_SPEC,
        "measured_fidelity": round(fidelity, 6),
        "families": rows,
        "max_error": max(r["max_hit_rate_error"] for r in rows),
        "max_allowed_error": MAX_SAMPLE_ERROR,
    }


# ----------------------------------------------------------------------
# Baseline + gates
# ----------------------------------------------------------------------


def load_baseline() -> dict | None:
    if not BASELINE_PATH.exists():
        return None
    return json.loads(BASELINE_PATH.read_text())


def scan_gate(baseline: dict, fresh: dict, fresh_calibration: float) -> dict:
    """Normalized v2 verified-scan throughput vs the committed baseline."""
    base_norm = (baseline["load"]["scan_events_per_sec"]
                 / baseline["calibration_bytes_per_sec"])
    fresh_norm = fresh["scan_events_per_sec"] / fresh_calibration
    ratio = fresh_norm / base_norm
    return {
        "baseline_normalized": round(base_norm, 9),
        "fresh_normalized": round(fresh_norm, 9),
        "ratio": round(ratio, 4),
        "floor": round(1.0 - REGRESSION_TOLERANCE, 4),
        "ok": ratio >= 1.0 - REGRESSION_TOLERANCE,
    }


def collect_failures(result: dict, check: bool) -> list[str]:
    failures = []
    load = result["load"]
    open_floor = (
        MIN_OPEN_SPEEDUP * (1.0 - REGRESSION_TOLERANCE)
        if check else MIN_OPEN_SPEEDUP
    )
    if load["open_speedup"] < open_floor:
        failures.append(
            f"v2 open speedup {load['open_speedup']:.2f}x "
            f"< {open_floor:g}x over v1 load"
        )
    arena = result["arena"]
    if arena.get("ratio") is not None and arena["ratio"] > MAX_ARENA_RATIO:
        failures.append(
            f"arena memory ratio {arena['ratio']:.2f}x "
            f"> {MAX_ARENA_RATIO:g}x single copy"
        )
    sampled = result["sampled"]
    if sampled["max_error"] > MAX_SAMPLE_ERROR:
        failures.append(
            f"sampled hit-rate error {sampled['max_error']:.4f} "
            f"> {MAX_SAMPLE_ERROR:g}"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=str, default=str(BASELINE_PATH),
        help="output JSON path (default: the committed BENCH_trace.json)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="gate against the committed baseline instead of rewriting it",
    )
    args = parser.parse_args(argv)
    scale = bench_scale()
    reps = bench_reps()

    print("calibrating machine speed ...", flush=True)
    calibration = calibrate()
    print(f"load throughput at scale {scale:g} "
          f"({MIN_OPEN_SPEEDUP:g}x open floor) ...", flush=True)
    load = measure_load(scale, reps)
    print(f"arena memory ratio ({ARENA_WORKERS} workers, "
          f"{MAX_ARENA_RATIO:g}x ceiling) ...", flush=True)
    arena = measure_arena()
    print(f"sampled fidelity ({SAMPLE_SPEC}, "
          f"{MAX_SAMPLE_ERROR:g} error ceiling) ...", flush=True)
    sampled = measure_sampled(scale)

    result = {
        "scale": scale,
        "calibration_bytes_per_sec": round(calibration),
        "load": load,
        "arena": arena,
        "sampled": sampled,
        "regression_tolerance": REGRESSION_TOLERANCE,
    }
    failures = collect_failures(result, check=args.check)

    baseline = load_baseline()
    if args.check:
        if baseline is None:
            print("FAIL: no committed BENCH_trace.json to gate against",
                  file=sys.stderr)
            return 1
        gate = scan_gate(baseline, load, calibration)
        print(f"  scan gate: ratio {gate['ratio']:.3f} "
              f"(floor {gate['floor']:.2f})")
        if not gate["ok"]:
            failures.append(
                f"verified-scan throughput regressed: normalized ratio "
                f"{gate['ratio']:.3f} < {gate['floor']:.2f}"
            )
    elif failures:
        # Never record a baseline that fails its own floors — a later
        # --check run would gate against numbers already known bad.
        print(f"not writing {args.out}: floors failed", file=sys.stderr)
    else:
        Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.out}")

    print(f"  load: v1 {load['v1_load_s']:.4f}s, v2 open "
          f"{load['v2_open_s']:.6f}s ({load['open_speedup']:.0f}x), "
          f"verified scan {load['v2_verified_scan_s']:.4f}s")
    if arena.get("ratio") is not None:
        print(f"  arena: {arena['ratio']:.2f}x single copy "
              f"(private copies: {arena['private_ratio']:.2f}x)")
    else:
        print(f"  arena: skipped ({arena['skipped']})")
    print(f"  sampled: max hit-rate error {sampled['max_error']:.4f} "
          f"at fidelity {sampled['measured_fidelity']:.3f}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok: trace-store floors hold")
    return 0


# -- pytest gate (CI: pytest -q -m perf benchmarks/bench_trace_store.py)

try:
    import pytest
except ImportError:  # pragma: no cover - standalone script use
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def baseline():
        committed = load_baseline()
        if committed is None:
            pytest.skip("no committed BENCH_trace.json")
        return committed

    @pytest.mark.perf
    def test_load_throughput_no_regression(baseline):
        fresh = measure_load(baseline["scale"], bench_reps())
        gate = scan_gate(baseline, fresh, calibrate())
        assert gate["ok"], (
            f"verified-scan throughput regressed: normalized ratio "
            f"{gate['ratio']} < {gate['floor']} "
            f"(fresh {fresh['scan_events_per_sec']:,} events/s vs "
            f"committed {baseline['load']['scan_events_per_sec']:,})"
        )
        floor = MIN_OPEN_SPEEDUP * (1.0 - REGRESSION_TOLERANCE)
        assert fresh["open_speedup"] >= floor, fresh

    @pytest.mark.perf
    def test_arena_memory_ratio(baseline):
        if _pss_kb() is None:
            pytest.skip("/proc/self/smaps_rollup unavailable")
        fresh = measure_arena()
        assert fresh["ratio"] <= MAX_ARENA_RATIO, fresh

    @pytest.mark.perf
    def test_sampled_error_envelope(baseline):
        fresh = measure_sampled(baseline["scale"])
        assert fresh["max_error"] <= MAX_SAMPLE_ERROR, fresh

    @pytest.mark.perf
    def test_committed_baseline_meets_the_floors(baseline):
        assert baseline["load"]["open_speedup"] >= MIN_OPEN_SPEEDUP
        arena = baseline.get("arena") or {}
        if arena.get("ratio") is not None:
            assert arena["ratio"] <= MAX_ARENA_RATIO
        else:
            assert arena.get("skipped"), (
                "committed arena section must either meet the ceiling "
                "or carry an explicit skip reason"
            )
        assert baseline["sampled"]["max_error"] <= MAX_SAMPLE_ERROR


if __name__ == "__main__":
    sys.exit(main())

"""Figures 9 & 10: the generalization heat maps.

Shape claims checked (paper, Section V):
- runtime penalty grows monotonically with both latency multipliers;
- the calibration anchor: 5× read latency costs a small-single-digit
  percentage of runtime over the 1×/1× cell;
- for energy: substantial write-energy headroom exists — higher
  per-operation energy than DRAM can still beat DRAM's total energy
  because NVM pays no static power (paper: up to 9× write / 2× read).
"""

from conftest import once

from repro.experiments.heatmap import figure9, figure10
from repro.experiments.render import render_heatmap

FACTORS = (1, 2, 5, 10, 20)


def test_figure9_latency_heatmap(benchmark, runner, workloads):
    hm = once(
        benchmark, lambda: figure9(runner, workloads=workloads, factors=FACTORS)
    )
    print("\n" + render_heatmap(hm))
    base = hm.at(1, 1)
    # Monotone in read latency along every write row.
    for write_x in FACTORS:
        row = [hm.at(read_x, write_x) for read_x in FACTORS]
        assert row == sorted(row), f"write={write_x}"
    # Monotone in write latency along every read column.
    for read_x in FACTORS:
        col = [hm.at(read_x, write_x) for write_x in FACTORS]
        assert col == sorted(col), f"read={read_x}"
    # Calibration anchor: 5x read costs a small fraction of runtime.
    assert 0.0 < hm.at(5, 1) - base < 0.15
    # 20x/20x is a bounded, not catastrophic, penalty.
    assert hm.at(20, 20) - base < 1.0


def test_figure10_energy_heatmap(benchmark, runner, workloads):
    hm = once(
        benchmark, lambda: figure10(runner, workloads=workloads, factors=FACTORS)
    )
    print("\n" + render_heatmap(hm))
    # The paper's headroom claim: ~2x read / up to ~10x write energy
    # still at or below DRAM's total energy.
    assert hm.at(read_x=2, write_x=10) <= 1.0
    # Static-power elimination produces energy-saving cells even with
    # higher per-op energy ("several energy saving configurations").
    saving_cells = sum(
        1 for row in hm.values for value in row if value < 1.0
    )
    assert saving_cells >= len(FACTORS)
    # And the map is monotone in read energy.
    for write_x in FACTORS:
        row = [hm.at(read_x, write_x) for read_x in FACTORS]
        assert row == sorted(row)

"""Simulation-reuse throughput benchmark and regression gate.

Five measurements, one committed baseline (``BENCH_sim.json``):

1. **Sequential single-design throughput** — post-L3 requests per
   second through one design's lower levels, best-of-N. This is the
   number the perf gate protects: the CI ``perf-smoke`` job re-measures
   it and fails on a >15% regression against the committed baseline
   (after dividing out machine speed with a fixed calibration loop, so
   the gate survives hardware changes).
2. **Prefix-sharing speedup** — the paper's 4LC + 4LC-NVM
   (PCM/STT-RAM/FeRAM) cluster simulated (a) fully independently, one
   complete lower-level simulation per design, and (b) through a
   :class:`~repro.experiments.simplan.SimPlan`, which dedups identical
   sim keys and runs the shared eDRAM L4 once. Asserted >= 2x.
3. **Parallel sweep speedup** — a multi-workload sweep at ``workers=1``
   vs ``workers=2`` over a shared on-disk trace cache. Asserted
   >= 1.6x. Skipped in quick mode (CI), where the committed values
   stand in.
4. **Engine speedup** — the set-parallel vectorized LRU engine vs the
   scalar loop on ``SetAssociativeCache.process`` directly, for the
   reference L1 geometry under a random working set (the headline,
   asserted >= 2x) plus streaming-L1 and L2 context rows. Scalar and
   setpar trials are *interleaved* and the ratio taken between
   best-of-N times: container timing noise swings far more between
   runs than within one, and interleaving cancels it. Single-process
   NumPy — no CPU-count gate needed.
5. **Analytic-engine speedup** — a 24-cell joint capacity grid (deep
   hybrid: eDRAM L4 x DRAM cache, one shared page size) resolved by
   exact per-cell replay vs the analytic fast-path engine pricing
   every cell from a single reuse-distance profile. Two sectored
   page-cache levels per cell keep the exact side on the scalar loop —
   precisely the sweep shape the analytic screen exists for. Each
   analytic rep starts from a cold profile cache, so the one-pass
   profiling (and its persistence) is inside the timing. Asserted
   >= 10x on the committed baseline; fresh re-measurements apply the
   standard noise tolerance.

Run from the repo root to (re)write the baseline::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py

Run the CI gate (quick mode, read-only)::

    PYTHONPATH=src python -m pytest -q -m perf benchmarks/bench_sim_throughput.py

Environment knobs: ``REPRO_BENCH_SCALE`` (default 1/1024),
``REPRO_BENCH_REPS`` (default 3), ``REPRO_BENCH_QUICK=1`` to skip the
parallel measurement.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.hierarchy import run_chain
from repro.cache.setassoc import SetAssociativeCache
from repro.designs.configs import EH_CONFIGS, EHConfig, N_CONFIGS, NConfig
from repro.designs.deephybrid import DeepHybridDesign
from repro.designs.fourlc import FourLCDesign
from repro.designs.fourlcnvm import FourLCNVMDesign
from repro.designs.nmm import NMMDesign
from repro.experiments.runner import Runner
from repro.experiments.simplan import SimPlan
from repro.resilience.executor import SweepExecutor
from repro.tech.params import EDRAM, FERAM, PCM, STTRAM
from repro.telemetry.core import Telemetry, activate
from repro.trace.events import AccessBatch
from repro.units import KiB, MiB
from repro.workloads.registry import get_workload

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"
DEFAULT_SCALE = 1.0 / 1024
DEFAULT_REPS = 3
#: CI gate: sequential throughput may not drop more than this.
REGRESSION_TOLERANCE = 0.15
MIN_PREFIX_SPEEDUP = 2.0
MIN_PARALLEL_SPEEDUP = 1.6
#: Floor for the *committed* engine headline (rewrites refuse to record
#: a baseline below it, and perf-smoke asserts the committed value).
#: Fresh re-measurements gate at this floor times
#: ``1 - REGRESSION_TOLERANCE`` — the same shared-host noise allowance
#: the sequential gate applies — because interleaved best-of-N trials
#: still move a few percent with co-tenant memory pressure.
MIN_ENGINE_SPEEDUP = 2.0
#: Floor for the committed analytic-vs-exact sweep speedup. The
#: analytic engine replaces O(designs * trace) replay with one profile
#: pass per page granularity plus O(levels) array math per design, so
#: an order of magnitude is the *minimum* acceptable return; fresh
#: re-measurements apply ``1 - REGRESSION_TOLERANCE`` on top.
MIN_ANALYTIC_SPEEDUP = 10.0
ENGINE_TRIALS = 10
SEQUENTIAL_WORKLOAD = "CG"
PARALLEL_WORKLOADS = ("CG", "SP", "Hashing", "BT")


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


def bench_reps() -> int:
    return int(os.environ.get("REPRO_BENCH_REPS", DEFAULT_REPS))


def quick_mode() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") == "1"


def sharing_cluster(reference, scale):
    """The acceptance sweep: one 4LC plus three 4LC-NVM points, all on
    the same eDRAM EH4 L4 (two sim keys, one shared level)."""
    return [
        FourLCDesign(EDRAM, EH_CONFIGS["EH4"], scale=scale,
                     reference=reference),
        FourLCNVMDesign(EDRAM, PCM, EH_CONFIGS["EH4"], scale=scale,
                        reference=reference),
        FourLCNVMDesign(EDRAM, STTRAM, EH_CONFIGS["EH4"], scale=scale,
                        reference=reference),
        FourLCNVMDesign(EDRAM, FERAM, EH_CONFIGS["EH4"], scale=scale,
                        reference=reference),
    ]


def calibrate() -> float:
    """Machine-speed score: requests/s of a fixed, deterministic cache
    run. Committed and fresh throughputs are divided by this before
    comparison, so the perf gate measures the *code*, not the host.
    """
    rng = np.random.RandomState(0)
    addresses = (rng.randint(0, 1 << 22, size=200_000).astype(np.uint64)
                 << np.uint64(6))
    batch = AccessBatch(
        addresses,
        np.full(len(addresses), 64, dtype=np.uint32),
        (rng.rand(len(addresses)) < 0.3).astype(np.uint8),
    )
    best = float("inf")
    for _ in range(3):
        cache = SetAssociativeCache(CacheConfig("CAL", 256 * KiB, 8, 64))
        start = time.perf_counter()
        cache.process(batch)
        best = min(best, time.perf_counter() - start)
    return len(batch) / best


def measure_sequential(runner: Runner, reps: int) -> dict:
    """Best-of-``reps`` lower-level replay throughput for one design."""
    workload = get_workload(SEQUENTIAL_WORKLOAD)
    design = NMMDesign(PCM, N_CONFIGS["N6"], scale=runner.scale,
                       reference=runner.reference)
    trace = runner.prepare(workload)
    best = float("inf")
    for _ in range(reps):
        caches = design.lower_caches()
        memory = design.memory()
        start = time.perf_counter()
        for chunk in trace.post_l3.chunks():
            run_chain(chunk, caches, memory)
        best = min(best, time.perf_counter() - start)
    requests = len(trace.post_l3)
    return {
        "workload": SEQUENTIAL_WORKLOAD,
        "design": design.sim_key(),
        "requests": requests,
        "sim_s": round(best, 6),
        "requests_per_sec": round(requests / best),
    }


def measure_prefix_sharing(runner: Runner, reps: int) -> dict:
    """Independent per-design simulation vs one shared-prefix plan."""
    workload = get_workload(SEQUENTIAL_WORKLOAD)
    designs = sharing_cluster(runner.reference, runner.scale)
    trace = runner.prepare(workload)

    independent = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        for design in designs:
            caches = design.lower_caches()
            memory = design.memory()
            for chunk in trace.post_l3.chunks():
                run_chain(chunk, caches, memory)
        independent = min(independent, time.perf_counter() - start)

    shared = float("inf")
    for _ in range(reps):
        plan = SimPlan(designs)
        start = time.perf_counter()
        plan.execute(trace.post_l3)
        shared = min(shared, time.perf_counter() - start)

    plan = SimPlan(designs)
    return {
        "workload": SEQUENTIAL_WORKLOAD,
        "designs": [d.name for d in designs],
        "sim_keys": plan.sim_count,
        "shared_levels": plan.shared_levels,
        "independent_s": round(independent, 6),
        "plan_s": round(shared, 6),
        "speedup": round(independent / shared, 3),
        "min_speedup": MIN_PREFIX_SPEEDUP,
    }


def engine_workloads() -> list[tuple[str, CacheConfig, AccessBatch]]:
    """The engine microbench inputs: (label, config, batch).

    The first entry is the headline the >=2x gate protects: the
    reference L1 geometry under a uniform-random working set much
    larger than the cache (the L1 hot loop the set-parallel engine was
    built for). The streaming row shares its run-collapse cost between
    both engines, so its ratio is structurally lower; the L2 row shows
    the geometry dependence. None of this is tied to CPU count — both
    engines are single-process NumPy.
    """
    rng = np.random.RandomState(42)
    n = 262_144
    rand_addrs = (rng.randint(0, 1 << 16, size=n).astype(np.uint64)
                  << np.uint64(6))
    rand_stores = (rng.rand(n) < 0.3).astype(np.uint8)
    sizes = np.full(n, 8, dtype=np.uint32)
    random_batch = AccessBatch(rand_addrs, sizes, rand_stores)

    base = rng.randint(0, 1 << 16, size=n // 4).astype(np.uint64)
    stream_addrs = np.repeat(base << np.uint64(6), 4)
    stream_stores = (rng.rand(n) < 0.3).astype(np.uint8)
    stream_batch = AccessBatch(stream_addrs, sizes, stream_stores)

    return [
        ("L1-random", CacheConfig("L1", 32 * KiB, 8, 64), random_batch),
        ("L1-stream4", CacheConfig("L1", 32 * KiB, 8, 64), stream_batch),
        ("L2-random", CacheConfig("L2", 256 * KiB, 8, 64), random_batch),
    ]


def measure_engines(trials: int = ENGINE_TRIALS) -> dict:
    """Interleaved scalar-vs-setpar timings of the process() hot loop.

    Every trial times a cold scalar cache then a cold setpar cache on
    the same batch; the reported speedup is min(scalar)/min(setpar).
    Statistics equality across engines is asserted as a sanity check
    (the real bit-exactness proof lives in the test suite).
    """
    from repro.cache.config import with_engine

    rows = []
    for label, config, batch in engine_workloads():
        best = {"scalar": float("inf"), "setpar": float("inf")}
        stats = {}
        for _ in range(trials):
            for eng in ("scalar", "setpar"):
                cache = SetAssociativeCache(with_engine(config, eng))
                start = time.perf_counter()
                cache.process(batch)
                best[eng] = min(best[eng], time.perf_counter() - start)
                stats[eng] = cache.stats.as_dict()
        if stats["scalar"] != stats["setpar"]:
            raise RuntimeError(
                f"engine divergence on {label}: {stats}"
            )
        rows.append({
            "workload": label,
            "config": config.describe(),
            "requests": len(batch),
            "scalar_s": round(best["scalar"], 6),
            "setpar_s": round(best["setpar"], 6),
            "speedup": round(best["scalar"] / best["setpar"], 3),
        })
    return {
        "trials": trials,
        "workloads": rows,
        "headline": rows[0]["workload"],
        "headline_speedup": rows[0]["speedup"],
        "min_speedup": MIN_ENGINE_SPEEDUP,
    }


#: Joint capacity grid for the analytic measurement: eDRAM L4 size (MiB)
#: x DRAM-cache size (MiB), every cell at one shared page size so a
#: single reuse profile prices the whole grid.
ANALYTIC_L4_MIB = (4, 8, 16, 32)
ANALYTIC_DRAM_MIB = (64, 128, 256, 512, 1024, 2048)
ANALYTIC_PAGE_SIZE = 512


def analytic_sweep(reference, scale):
    """The co-design grid the analytic screen is built for: 24 deep
    hybrid points (eDRAM L4 x DRAM cache, one 512 B page size) whose
    two sectored page-cache levels keep the exact engine on the scalar
    loop — while the analytic engine amortizes one reuse profile over
    every cell."""
    return [
        DeepHybridDesign(
            EDRAM, PCM,
            EHConfig(f"B{i}", l4 * MiB, ANALYTIC_PAGE_SIZE),
            NConfig(f"C{j}", dram * MiB, ANALYTIC_PAGE_SIZE),
            scale=scale, reference=reference,
        )
        for i, l4 in enumerate(ANALYTIC_L4_MIB)
        for j, dram in enumerate(ANALYTIC_DRAM_MIB)
    ]


def measure_analytic(scale: float, reps: int) -> dict:
    """Exact replay of the co-design capacity grid vs the analytic engine.

    The exact side replays the post-L3 trace through each cell's two
    sectored lower levels, best-of-``reps`` over the whole grid. The
    analytic side gets a fresh runner per rep with the on-disk profile
    cache cleared first, so every rep pays the full one-pass profiling
    (and persistence) cost — not a warm-cache lookup. Both sides share
    one prepared trace; tracing and the upper-pyramid replay are
    outside both timings (they are identical either way).
    """
    import tempfile

    workload = get_workload(SEQUENTIAL_WORKLOAD)
    with tempfile.TemporaryDirectory() as trace_cache:
        exact_runner = Runner(scale=scale, seed=0,
                              trace_cache_dir=trace_cache)
        designs = analytic_sweep(exact_runner.reference, scale)
        trace = exact_runner.prepare(workload)

        exact = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            for design in designs:
                caches = design.lower_caches()
                memory = design.memory()
                for chunk in trace.post_l3.chunks():
                    run_chain(chunk, caches, memory)
            exact = min(exact, time.perf_counter() - start)

        analytic = float("inf")
        last_stats = None
        for _ in range(reps):
            runner = Runner(scale=scale, seed=0,
                            trace_cache_dir=trace_cache,
                            engine="analytic")
            runner.prepare(workload)  # cached trace load, untimed
            for stale in Path(trace_cache).glob("*.profile-*"):
                stale.unlink()  # each rep profiles from scratch
            sweep = analytic_sweep(runner.reference, scale)
            start = time.perf_counter()
            for design in sweep:
                last_stats = runner.stats_for(design, workload)
            analytic = min(analytic, time.perf_counter() - start)

        # Arrival accounting at the first lower level is exact by
        # contract — a mismatch here means the engines drifted apart
        # and the timing comparison is meaningless.
        exact_stats = exact_runner.stats_for(designs[-1], workload)
        first = len(exact_stats.levels) - len(designs[-1].lower_caches()) - 1
        if (
            last_stats.levels[first].loads != exact_stats.levels[first].loads
            or last_stats.levels[first].stores
            != exact_stats.levels[first].stores
        ):
            raise RuntimeError(
                "analytic/exact arrival divergence on the co-design grid"
            )

    cells = len(designs)
    return {
        "workload": SEQUENTIAL_WORKLOAD,
        "designs": [d.name for d in designs],
        "requests": len(trace.post_l3),
        "exact_s": round(exact, 6),
        "analytic_s": round(analytic, 6),
        "exact_cell_s": round(exact / cells, 6),
        "analytic_cell_s": round(analytic / cells, 6),
        "speedup": round(exact / analytic, 3),
        "min_speedup": MIN_ANALYTIC_SPEEDUP,
    }


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def measure_parallel(scale: float, trace_cache: str) -> dict:
    """Wall-clock of the same multi-workload sweep at 1 and 2 workers.

    Traces are prewarmed into a shared on-disk cache first so both
    modes pay identical (near-zero) tracing costs and the comparison
    isolates simulation + evaluation work. On a single-CPU host two
    CPU-bound workers can only time-slice, so the measurement is
    recorded as skipped rather than committing a meaningless number —
    the floor is enforced wherever >= 2 cores exist (CI runners).
    """
    cpus = usable_cpus()
    if cpus < 2:
        return {
            "workloads": list(PARALLEL_WORKLOADS),
            "workers": 2,
            "cpus": cpus,
            "speedup": None,
            "min_speedup": MIN_PARALLEL_SPEEDUP,
            "skipped": "host exposes a single CPU; two workers can only "
                       "time-slice, so no speedup is measurable",
        }
    workloads = [get_workload(name) for name in PARALLEL_WORKLOADS]
    warm = Runner(scale=scale, seed=0, trace_cache_dir=trace_cache)
    for workload in workloads:
        warm.prepare(workload)

    def timed(workers: int) -> float:
        runner = Runner(scale=scale, seed=0, trace_cache_dir=trace_cache)
        designs = sharing_cluster(runner.reference, scale)
        executor = SweepExecutor(runner, workers=workers)
        start = time.perf_counter()
        result = executor.run(designs, workloads)
        elapsed = time.perf_counter() - start
        if not all(outcome.ok for outcome in result.outcomes):
            raise RuntimeError("benchmark sweep had non-ok cells")
        return elapsed

    workers1 = timed(1)
    workers2 = timed(2)
    return {
        "workloads": list(PARALLEL_WORKLOADS),
        "designs": [d.name for d in sharing_cluster(None, scale)],
        "workers": 2,
        "cpus": cpus,
        "workers1_s": round(workers1, 6),
        "workers2_s": round(workers2, 6),
        "speedup": round(workers1 / workers2, 3),
        "min_speedup": MIN_PARALLEL_SPEEDUP,
    }


def span_totals(registry) -> dict[str, float]:
    """Per-span-name total seconds from a registry snapshot."""
    totals: dict[str, float] = {}
    for entry in registry.snapshot():
        if entry["name"] == "repro_span_seconds":
            name = entry["labels"].get("name", "?")
            totals[name] = totals.get(name, 0.0) + entry["sum"]
    return totals


def load_baseline() -> dict | None:
    if not BASELINE_PATH.exists():
        return None
    return json.loads(BASELINE_PATH.read_text())


def sequential_gate(baseline: dict, fresh: dict,
                    fresh_calibration: float) -> dict:
    """Compare normalized sequential throughput against the baseline."""
    base_norm = (baseline["sequential"]["requests_per_sec"]
                 / baseline["calibration_requests_per_sec"])
    fresh_norm = fresh["requests_per_sec"] / fresh_calibration
    ratio = fresh_norm / base_norm
    return {
        "baseline_normalized": round(base_norm, 6),
        "fresh_normalized": round(fresh_norm, 6),
        "ratio": round(ratio, 4),
        "floor": round(1.0 - REGRESSION_TOLERANCE, 4),
        "ok": ratio >= 1.0 - REGRESSION_TOLERANCE,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=str, default=str(BASELINE_PATH),
        help="output JSON path (default: the committed BENCH_sim.json)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="gate against the committed baseline instead of rewriting it",
    )
    args = parser.parse_args(argv)
    scale = bench_scale()
    reps = bench_reps()
    tel = Telemetry()
    runner = Runner(scale=scale, seed=0, telemetry=tel)

    print(f"calibrating machine speed ...", flush=True)
    calibration = calibrate()
    with activate(tel):
        print(f"sequential replay at scale {scale:g} ...", flush=True)
        sequential = measure_sequential(runner, reps)
        print(f"prefix sharing ({MIN_PREFIX_SPEEDUP:g}x floor) ...",
              flush=True)
        prefix = measure_prefix_sharing(runner, reps)
    print(f"engine microbench ({MIN_ENGINE_SPEEDUP:g}x floor, "
          f"{ENGINE_TRIALS} interleaved trials) ...", flush=True)
    engines = measure_engines()
    print(f"analytic sweep ({MIN_ANALYTIC_SPEEDUP:g}x floor) ...",
          flush=True)
    analytic = measure_analytic(scale, reps)

    result = {
        "scale": scale,
        "calibration_requests_per_sec": round(calibration),
        "sequential": sequential,
        "prefix_sharing": prefix,
        "engines": engines,
        "analytic": analytic,
        "regression_tolerance": REGRESSION_TOLERANCE,
        "stage_seconds": {
            name: round(seconds, 6)
            for name, seconds in sorted(span_totals(tel.registry).items())
        },
    }

    failures = []
    if prefix["speedup"] < MIN_PREFIX_SPEEDUP:
        failures.append(
            f"prefix-sharing speedup {prefix['speedup']:.2f}x "
            f"< {MIN_PREFIX_SPEEDUP:g}x"
        )
    engine_floor = (
        MIN_ENGINE_SPEEDUP * (1.0 - REGRESSION_TOLERANCE)
        if args.check else MIN_ENGINE_SPEEDUP
    )
    if engines["headline_speedup"] < engine_floor:
        failures.append(
            f"engine speedup {engines['headline_speedup']:.2f}x "
            f"< {engine_floor:g}x on {engines['headline']}"
        )
    analytic_floor = (
        MIN_ANALYTIC_SPEEDUP * (1.0 - REGRESSION_TOLERANCE)
        if args.check else MIN_ANALYTIC_SPEEDUP
    )
    if analytic["speedup"] < analytic_floor:
        failures.append(
            f"analytic sweep speedup {analytic['speedup']:.2f}x "
            f"< {analytic_floor:g}x"
        )

    if quick_mode():
        print("quick mode: skipping the parallel sweep measurement")
    else:
        import tempfile

        print(f"parallel sweep ({MIN_PARALLEL_SPEEDUP:g}x floor) ...",
              flush=True)
        with tempfile.TemporaryDirectory() as trace_cache:
            result["parallel"] = measure_parallel(scale, trace_cache)
        speedup = result["parallel"]["speedup"]
        if speedup is not None and speedup < MIN_PARALLEL_SPEEDUP:
            failures.append(
                f"parallel speedup {speedup:.2f}x "
                f"< {MIN_PARALLEL_SPEEDUP:g}x"
            )

    baseline = load_baseline()
    if args.check:
        if baseline is None:
            print("FAIL: no committed BENCH_sim.json to gate against",
                  file=sys.stderr)
            return 1
        gate = sequential_gate(baseline, sequential, calibration)
        print(
            f"  sequential gate: ratio {gate['ratio']:.3f} "
            f"(floor {gate['floor']:.2f})"
        )
        if not gate["ok"]:
            failures.append(
                f"sequential throughput regressed: normalized ratio "
                f"{gate['ratio']:.3f} < {gate['floor']:.2f}"
            )
    elif failures:
        # Never record a baseline that fails its own floors — a later
        # --check run would gate against numbers already known bad.
        print(f"not writing {args.out}: floors failed", file=sys.stderr)
    else:
        if baseline is not None and "parallel" not in result:
            # Quick rewrites keep the committed parallel numbers.
            result["parallel"] = baseline.get("parallel")
        Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.out}")

    print(f"  sequential: {sequential['requests_per_sec']:,} post-L3 req/s")
    print(f"  prefix sharing: {prefix['speedup']:.2f}x "
          f"({prefix['independent_s']:.3f}s -> {prefix['plan_s']:.3f}s)")
    for row in engines["workloads"]:
        print(f"  engine [{row['workload']}]: {row['speedup']:.2f}x "
              f"({row['scalar_s']:.3f}s -> {row['setpar_s']:.3f}s)")
    print(f"  analytic sweep ({len(analytic['designs'])} cells): "
          f"{analytic['speedup']:.2f}x "
          f"({analytic['exact_s']:.3f}s -> {analytic['analytic_s']:.3f}s)")
    par = result.get("parallel")
    if par and par.get("speedup") is not None:
        print(f"  workers=2: {par['speedup']:.2f}x "
              f"({par['workers1_s']:.3f}s -> {par['workers2_s']:.3f}s)")
    elif par:
        print(f"  workers=2: skipped ({par.get('skipped', 'no measurement')})")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("ok: throughput floors hold")
    return 0


# -- pytest gate (CI: pytest -q -m perf benchmarks/bench_sim_throughput.py)

try:
    import pytest
except ImportError:  # pragma: no cover - standalone script use
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def gate_runner():
        baseline = load_baseline()
        if baseline is None:
            pytest.skip("no committed BENCH_sim.json")
        return baseline, Runner(scale=baseline["scale"], seed=0)

    @pytest.mark.perf
    def test_sequential_throughput_no_regression(gate_runner):
        baseline, runner = gate_runner
        fresh = measure_sequential(runner, bench_reps())
        gate = sequential_gate(baseline, fresh, calibrate())
        assert gate["ok"], (
            f"sequential throughput regressed: normalized ratio "
            f"{gate['ratio']} < {gate['floor']} "
            f"(fresh {fresh['requests_per_sec']:,} req/s vs committed "
            f"{baseline['sequential']['requests_per_sec']:,})"
        )

    @pytest.mark.perf
    def test_prefix_sharing_speedup_floor(gate_runner):
        baseline, runner = gate_runner
        fresh = measure_prefix_sharing(runner, bench_reps())
        assert fresh["speedup"] >= MIN_PREFIX_SPEEDUP, fresh

    @pytest.mark.perf
    def test_parallel_speedup_floor(gate_runner):
        if usable_cpus() < 2:
            pytest.skip("parallel speedup needs >= 2 CPUs")
        baseline, _ = gate_runner
        import tempfile

        with tempfile.TemporaryDirectory() as trace_cache:
            fresh = measure_parallel(baseline["scale"], trace_cache)
        assert fresh["speedup"] >= MIN_PARALLEL_SPEEDUP, fresh

    @pytest.mark.perf
    def test_engine_speedup_floor():
        """Fresh interleaved measurement of the setpar engine on the
        L1 hot loop; purely in-process, so it needs no CPU-count gate.
        The committed baseline carries the absolute
        ``MIN_ENGINE_SPEEDUP`` floor; the fresh re-measurement applies
        the standard noise tolerance on top."""
        fresh = measure_engines()
        floor = MIN_ENGINE_SPEEDUP * (1.0 - REGRESSION_TOLERANCE)
        assert fresh["headline_speedup"] >= floor, fresh

    @pytest.mark.perf
    def test_analytic_speedup_floor(gate_runner):
        """Fresh analytic-vs-exact sweep measurement: the fast path
        must stay an order of magnitude ahead (noise tolerance
        applied; the committed baseline carries the absolute floor)."""
        baseline, _ = gate_runner
        fresh = measure_analytic(baseline["scale"], bench_reps())
        floor = MIN_ANALYTIC_SPEEDUP * (1.0 - REGRESSION_TOLERANCE)
        assert fresh["speedup"] >= floor, fresh

    @pytest.mark.perf
    def test_committed_baseline_meets_the_floors():
        baseline = load_baseline()
        if baseline is None:
            pytest.skip("no committed BENCH_sim.json")
        assert baseline["prefix_sharing"]["speedup"] >= MIN_PREFIX_SPEEDUP
        engines = baseline.get("engines") or {}
        assert engines.get("headline_speedup", 0.0) >= MIN_ENGINE_SPEEDUP
        analytic = baseline.get("analytic") or {}
        assert analytic.get("speedup", 0.0) >= MIN_ANALYTIC_SPEEDUP
        parallel = baseline.get("parallel") or {}
        if parallel.get("speedup") is not None:
            assert parallel["speedup"] >= MIN_PARALLEL_SPEEDUP
        else:
            assert parallel.get("skipped"), (
                "committed parallel section must either meet the floor "
                "or carry an explicit skip reason"
            )


if __name__ == "__main__":
    sys.exit(main())

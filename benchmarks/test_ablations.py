"""Ablation benchmarks for the design choices DESIGN.md calls out.

These quantify *why* the model is built the way it is:

- sector-granularity vs whole-page writebacks (DESIGN.md §6.3);
- hashed vs bit-sliced set indexing for page caches (§4b);
- LRU vs FIFO vs Random replacement (the paper assumes LRU);
- the local-factor dilution (§6.1).
"""

from conftest import once

from repro.cache.config import CacheConfig
from repro.cache.setassoc import SetAssociativeCache
from repro.designs.configs import N_CONFIGS
from repro.designs.nmm import NMMDesign
from repro.experiments.runner import Runner
from repro.tech.params import PCM
from repro.units import KiB


def _post_l3(runner, workload):
    return runner.prepare(workload).post_l3


def _drive(cache, stream):
    total_store_bits = 0
    for chunk in stream.chunks():
        out = cache.process(chunk)
        if len(out):
            total_store_bits += int(
                (out.sizes[out.is_store == 1].astype("int64") * 8).sum()
            )
    flushed = cache.flush_dirty()
    if len(flushed):
        total_store_bits += int(flushed.sizes.astype("int64").sum() * 8)
    return total_store_bits


def test_ablation_sectored_writeback(benchmark, runner, workloads):
    """Whole-page writebacks inflate NVM write volume by an order of
    magnitude for store-heavy workloads — the justification for the
    paper's dirty-line tracking."""

    def run():
        results = {}
        for workload in workloads:
            stream = _post_l3(runner, workload)
            page = 2048
            capacity = 256 * KiB
            sectored = SetAssociativeCache(
                CacheConfig("S", capacity, 8, page, sector_size=64, hashed_sets=True)
            )
            whole = SetAssociativeCache(
                CacheConfig("W", capacity, 8, page, hashed_sets=True)
            )
            results[workload.name] = (
                _drive(sectored, stream),
                _drive(whole, stream),
            )
        return results

    results = once(benchmark, run)
    print()
    inflations = []
    for name, (sectored_bits, whole_bits) in results.items():
        ratio = whole_bits / sectored_bits if sectored_bits else float("inf")
        inflations.append(ratio)
        print(f"  {name}: NVM write bits sectored={sectored_bits:,} "
              f"whole-page={whole_bits:,} (x{ratio:.1f})")
        assert whole_bits >= sectored_bits
    # At least one workload must show substantial inflation.
    assert max(inflations) > 2.0


def test_ablation_hashed_sets(benchmark, runner, workloads):
    """Hashed indexing must not hurt — and typically helps — page-cache
    hit rates for strided traffic."""

    def run():
        results = {}
        for workload in workloads:
            stream = _post_l3(runner, workload)
            kwargs = dict(sector_size=64)
            hashed = SetAssociativeCache(
                CacheConfig("H", 256 * KiB, 8, 1024, hashed_sets=True, **kwargs)
            )
            sliced = SetAssociativeCache(
                CacheConfig("B", 256 * KiB, 8, 1024, hashed_sets=False, **kwargs)
            )
            for chunk in stream.chunks():
                hashed.process(chunk)
                sliced.process(chunk)
            results[workload.name] = (hashed.stats.hit_rate, sliced.stats.hit_rate)
        return results

    results = once(benchmark, run)
    print()
    for name, (hashed_rate, sliced_rate) in results.items():
        print(f"  {name}: hashed={hashed_rate:.3f} bit-sliced={sliced_rate:.3f}")
    mean_h = sum(h for h, _ in results.values()) / len(results)
    mean_s = sum(s for _, s in results.values()) / len(results)
    assert mean_h >= mean_s - 0.02


def test_ablation_replacement_policy(benchmark, runner, workloads):
    """LRU (the paper's policy) vs FIFO vs Random at the DRAM cache."""

    def run():
        results = {}
        for workload in workloads:
            stream = _post_l3(runner, workload)
            rates = {}
            for policy in ("lru", "fifo", "random"):
                cache = SetAssociativeCache(
                    CacheConfig(
                        "P", 256 * KiB, 8, 512,
                        sector_size=64, hashed_sets=True, policy=policy,
                    )
                )
                for chunk in stream.chunks():
                    cache.process(chunk)
                rates[policy] = cache.stats.hit_rate
            results[workload.name] = rates
        return results

    results = once(benchmark, run)
    print()
    lru_wins = 0
    for name, rates in results.items():
        print(f"  {name}: " + " ".join(f"{p}={r:.3f}" for p, r in rates.items()))
        if rates["lru"] >= max(rates["fifo"], rates["random"]) - 0.01:
            lru_wins += 1
    # LRU is at least competitive on most workloads.
    assert lru_wins >= len(results) // 2


def test_ablation_local_factor(benchmark, workloads):
    """Overhead magnitudes scale down with the local factor while the
    *ordering* of configurations is insensitive to it."""
    scale = 1.0 / 2048

    def run():
        results = {}
        for lam in (0.0, 8.0, 16.0):
            r = Runner(scale=scale, seed=0, local_factor=lam)
            design_a = NMMDesign(PCM, N_CONFIGS["N3"], scale=scale, reference=r.reference)
            design_b = NMMDesign(PCM, N_CONFIGS["N1"], scale=scale, reference=r.reference)
            w = workloads[0]
            results[lam] = (
                r.evaluate(design_a, w).time_norm,
                r.evaluate(design_b, w).time_norm,
            )
        return results

    results = once(benchmark, run)
    print()
    for lam, (n3, n1) in results.items():
        print(f"  local_factor={lam:g}: N3={n3:.3f} N1={n1:.3f}")
    # Dilution: overhead shrinks monotonically with lambda.
    overheads = [results[lam][0] - 1.0 for lam in (0.0, 8.0, 16.0)]
    assert overheads[0] >= overheads[1] >= overheads[2] >= 0
    # Ordering stability: N3 (bigger DRAM cache) never worse than N1.
    for n3, n1 in results.values():
        assert n3 <= n1 + 1e-9


def test_ablation_prefetch_vs_page_size(benchmark, runner, workloads):
    """Next-line prefetching at 64 B pages vs native 128 B pages: the
    prefetcher provides the spatial coverage of the bigger page while
    fetching only on demand misses — the fetch- vs allocation-
    granularity split behind the paper's page-size results."""
    from repro.cache.prefetch import PrefetchingCache

    def run():
        results = {}
        for workload in workloads:
            stream = _post_l3(runner, workload)
            small = SetAssociativeCache(
                CacheConfig("A", 256 * KiB, 8, 64, hashed_sets=True)
            )
            small_pf = PrefetchingCache(
                SetAssociativeCache(
                    CacheConfig("B", 256 * KiB, 8, 64, hashed_sets=True)
                ),
                degree=1,
            )
            big = SetAssociativeCache(
                CacheConfig(
                    "C", 256 * KiB, 8, 128, sector_size=64, hashed_sets=True
                )
            )
            for chunk in stream.chunks():
                small.process(chunk)
                small_pf.process(chunk)
                big.process(chunk)
            results[workload.name] = (
                small.stats.hit_rate,
                small_pf.cache.stats.hit_rate,
                big.stats.hit_rate,
                small_pf.prefetch_stats.accuracy,
            )
        return results

    results = once(benchmark, run)
    print()
    wins = 0
    for name, (plain, prefetched, big_page, accuracy) in results.items():
        print(f"  {name}: 64B={plain:.3f} 64B+pf={prefetched:.3f} "
              f"128B={big_page:.3f} (pf accuracy {accuracy:.2f})")
        if prefetched >= plain:
            wins += 1
    # Prefetching must help (or at worst not hurt) on most workloads.
    assert wins >= len(results) // 2


def test_ablation_bandwidth_model(benchmark, runner, workloads):
    """Eq. (2) (flat latency) vs the bandwidth-aware extension: the
    extension must only ever add time, and it adds the most where page
    fills move the most bytes (NMM at 4 KB pages)."""
    from repro.model.amat import amat_ns
    from repro.model.bandwidth import amat_with_bandwidth_ns

    def run():
        results = {}
        for cfg in ("N1", "N9"):
            design = NMMDesign(PCM, N_CONFIGS[cfg], scale=runner.scale,
                               reference=runner.reference)
            deltas = []
            for workload in workloads:
                stats = runner.stats_for(design, workload)
                bindings = design.bindings(workload.info.footprint_bytes)
                plain = amat_ns(stats, bindings)
                with_bw = amat_with_bandwidth_ns(stats, bindings)
                deltas.append((with_bw - plain) / plain)
            results[cfg] = sum(deltas) / len(deltas)
        return results

    results = once(benchmark, run)
    print()
    for cfg, delta in results.items():
        print(f"  {cfg}: bandwidth term adds {delta:+.1%} to AMAT")
    assert all(delta >= 0 for delta in results.values())
    # 4 KB fills (N1) move ~64x the bytes of 64 B fills (N9).
    assert results["N1"] > results["N9"]

"""Pipeline baseline + telemetry-overhead benchmark.

Two jobs in one harness:

1. **Seed the bench trajectory** — run one NMM and one 4LC cell end to
   end (trace, shared upper simulation, design simulation, model) with
   an in-memory telemetry registry, and write the per-stage wall times
   and simulation throughput to ``BENCH_pipeline.json`` so future PRs
   can diff against a committed baseline.
2. **Prove disabled telemetry is free** — time the simulate loop as it
   was before the observer hook existed (no ``observer`` check, no
   span) against today's ``Hierarchy.run`` with telemetry disabled,
   and assert the overhead is below 2%.
3. **Gate run correlation** — time the enabled event path with and
   without a :class:`RunContext` (which stamps ``run`` / ``worker`` /
   ``seq`` onto every JSONL line), reporting per-event microseconds
   for both. Since the batched event spool landed (labels stamped and
   JSON serialized at drain, not per ``event()`` call) this is a hard
   gate: labelled events must cost <5% over plain ones.
4. **Price live serving** — time one CG pipeline cell with
   file-backed telemetry, ``sweep --serve`` off vs on with one
   connected SSE client consuming the event stream throughout, and
   gate the serve-enabled overhead under 3%. The server runs on its
   own daemon threads and tails on-disk files, so the simulated cell
   should pay (almost) nothing for being watched.
5. **Price the sampling profiler** — time one CG pipeline cell with
   file-backed telemetry, profiler off vs on at the default rate, and
   gate the enabled overhead under 10%. The profiler-disabled path is
   the plain telemetry path (no hot-loop checks), already gated at 2%
   by job 2.

Every paired measurement also reports an **A/A noise floor** — the
median spread between same-code timings inside each ABBA rep — and a
verdict labelling deltas inside that floor as ``noise`` rather than
signal (a -2.6% "speedup" from adding code is scheduler jitter, not
physics).

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py

Environment knobs: ``REPRO_BENCH_SCALE`` (default 1/1024) and
``REPRO_BENCH_REPS`` (default 5; min-of-reps is reported).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.cache.hierarchy import Hierarchy, to_block_requests
from repro.cache.setassoc import check_request_sizes
from repro.designs.base import ReferenceSystem
from repro.designs.configs import EH_CONFIGS, N_CONFIGS
from repro.designs.fourlc import FourLCDesign
from repro.designs.nmm import NMMDesign
from repro.experiments.runner import Runner
from repro.tech.params import get_technology
from repro.telemetry.core import RunContext, Telemetry, activate, new_run_id
from repro.workloads.registry import get_workload

DEFAULT_SCALE = 1.0 / 1024
DEFAULT_REPS = 12
OVERHEAD_LIMIT_PCT = 2.0
LABELLED_LIMIT_PCT = 5.0
SERVE_LIMIT_PCT = 3.0
PROFILING_LIMIT_PCT = 10.0
WORKLOAD = "CG"


def noise_floor_pct(same_code_times: list[float]) -> float:
    """A/A noise estimate from same-code timings paired within reps.

    ``same_code_times`` alternates the two same-code measurements each
    ABBA rep produced (``[a1, a2, a1, a2, ...]``); the median |ratio -
    1| between them is what a *zero-cost* change would measure on this
    machine right now. Deltas inside this floor are noise, not signal.
    """
    import statistics

    deltas = [
        abs(first / second - 1.0) * 100.0
        for first, second in zip(
            same_code_times[0::2], same_code_times[1::2]
        )
    ]
    return round(statistics.median(deltas), 3) if deltas else 0.0


def verdict(overhead_pct: float, floor_pct: float) -> str:
    """``noise`` when the measured delta sits inside the A/A floor."""
    return "noise" if abs(overhead_pct) <= floor_pct else "measured"


def simulate_no_hook(caches, memory, stream) -> int:
    """The pre-telemetry simulate loop: no observer check, no span.

    Byte-for-byte the control flow ``Hierarchy.process_batch`` had
    before the observer hook landed, so the measured delta is exactly
    what the hook costs when telemetry is disabled.
    """
    references = 0
    for batch in stream.chunks():
        requests = to_block_requests(batch, caches[0].block_size)
        references += len(requests)
        for cache in caches:
            check_request_sizes(requests, cache.block_size, cache.name)
            requests = cache.process(requests)
            if len(requests) == 0:
                break
        else:
            memory.process(requests)
    return references


def measure_overhead(stream, reference: ReferenceSystem, scale: float,
                     reps: int) -> dict:
    """Overhead of ``Hierarchy.run`` over the no-hook loop.

    Each repetition times the loops in an **ABBA** order (no-hook,
    hooked, hooked, no-hook), so slow thermal/frequency drift hits
    both loops equally; the reported overhead is the ratio of the two
    minima (each loop's noise-free floor), with the median of per-pair
    ratios kept as a secondary estimate. Scheduler noise on a shared
    machine is several percent per run — far more than the hook's real
    cost — so anything short of paired sampling flips sign from run to
    run.
    """
    import statistics

    from repro.cache.mainmem import MainMemory

    def timed(fn) -> float:
        caches = reference.build_caches(scale)
        memory = MainMemory("MEM")
        start = time.perf_counter()
        fn(caches, memory)
        return time.perf_counter() - start

    def run_no_hook(caches, memory):
        simulate_no_hook(caches, memory, stream)

    def run_hooked(caches, memory):
        Hierarchy(caches, memory).run(stream)

    no_hook_times, hooked_times, ratios = [], [], []
    for _ in range(reps):
        a1 = timed(run_no_hook)
        b1 = timed(run_hooked)
        b2 = timed(run_hooked)
        a2 = timed(run_no_hook)
        no_hook_times += [a1, a2]
        hooked_times += [b1, b2]
        ratios.append((b1 + b2) / (a1 + a2))
    overhead_pct = (min(hooked_times) / min(no_hook_times) - 1.0) * 100.0
    floor = noise_floor_pct(no_hook_times)
    return {
        "no_hook_s": round(min(no_hook_times), 6),
        "hooked_disabled_s": round(min(hooked_times), 6),
        "overhead_pct": round(overhead_pct, 3),
        "overhead_median_pct": round(
            (statistics.median(ratios) - 1.0) * 100.0, 3
        ),
        "noise_floor_pct": floor,
        "verdict": verdict(overhead_pct, floor),
        "limit_pct": OVERHEAD_LIMIT_PCT,
        "reps": reps,
    }


def measure_context_stamping(reps: int, events: int = 4000) -> dict:
    """Per-event cost of the correlated vs the plain enabled path.

    Both variants write real JSONL lines to a temp directory; the
    correlated one additionally stamps ``run`` / ``worker`` / ``seq``
    and resolves the thread-local cell scope. ABBA pairing as in
    :func:`measure_overhead`; min-of-reps is the reported floor.
    """
    import shutil
    import tempfile

    def timed(run_context) -> float:
        directory = tempfile.mkdtemp(prefix="bench-telemetry-")
        telemetry = Telemetry(directory, run_context=run_context)
        with telemetry.cell_scope("bench-cell"):
            start = time.perf_counter()
            for index in range(events):
                telemetry.event("bench", index=index)
            elapsed = time.perf_counter() - start
        telemetry.close()
        shutil.rmtree(directory, ignore_errors=True)
        return elapsed

    context = RunContext(new_run_id(), "worker-0")
    plain_times, labelled_times = [], []
    for _ in range(reps):
        a1 = timed(None)
        b1 = timed(context)
        b2 = timed(context)
        a2 = timed(None)
        plain_times += [a1, a2]
        labelled_times += [b1, b2]
    plain = min(plain_times)
    labelled = min(labelled_times)
    overhead_pct = (labelled / plain - 1.0) * 100.0
    floor = noise_floor_pct(plain_times)
    return {
        "events": events,
        "plain_event_us": round(plain / events * 1e6, 3),
        "labelled_event_us": round(labelled / events * 1e6, 3),
        "overhead_pct": round(overhead_pct, 3),
        "noise_floor_pct": floor,
        "verdict": verdict(overhead_pct, floor),
        "limit_pct": LABELLED_LIMIT_PCT,
        "reps": reps,
    }


def measure_serving(scale: float, reps: int) -> dict:
    """Whole-cell cost of live HTTP/SSE serving with one watcher.

    Times one NMM/CG cell end to end with file-backed telemetry,
    ``TelemetryServer`` off vs on — the on variant with a connected
    SSE client draining ``/events`` for the whole cell, the worst
    realistic single-watcher load. ABBA-paired as in
    :func:`measure_overhead`. The server tails the on-disk event log
    from its own daemon threads, so the only cost visible to the
    simulated cell is scheduler pressure; the gate keeps it under 3%.
    """
    import shutil
    import tempfile
    import threading
    import urllib.request

    from repro.telemetry.live import TelemetryServer

    workload = get_workload(WORKLOAD)

    def timed(serve: bool) -> float:
        directory = tempfile.mkdtemp(prefix="bench-serve-")
        telemetry = Telemetry(
            directory, run_context=RunContext(new_run_id())
        )
        server = None
        client = None
        stop = threading.Event()
        if serve:
            server = TelemetryServer(
                directory, registry=telemetry.registry,
                poll_interval_s=0.05,
            ).start()

            def consume() -> None:
                try:
                    with urllib.request.urlopen(
                        server.url + "/events", timeout=30
                    ) as response:
                        while not stop.is_set():
                            if not response.readline():
                                break
                except OSError:
                    pass

            client = threading.Thread(target=consume, daemon=True)
            client.start()
        runner = Runner(scale=scale, seed=0, telemetry=telemetry)
        design = NMMDesign(
            get_technology("PCM"), N_CONFIGS["N6"],
            scale=scale, reference=runner.reference,
        )
        with activate(telemetry):
            start = time.perf_counter()
            runner.evaluate(design, workload)
            elapsed = time.perf_counter() - start
        stop.set()
        if server is not None:
            server.stop()
        if client is not None:
            client.join(timeout=5.0)
        telemetry.close()
        shutil.rmtree(directory, ignore_errors=True)
        return elapsed

    off_times, on_times = [], []
    for _ in range(reps):
        a1 = timed(False)
        b1 = timed(True)
        b2 = timed(True)
        a2 = timed(False)
        off_times += [a1, a2]
        on_times += [b1, b2]
    off = min(off_times)
    on = min(on_times)
    overhead_pct = (on / off - 1.0) * 100.0
    floor = noise_floor_pct(off_times)
    return {
        "serve_off_s": round(off, 6),
        "serve_on_s": round(on, 6),
        "overhead_pct": round(overhead_pct, 3),
        "noise_floor_pct": floor,
        "verdict": verdict(overhead_pct, floor),
        "limit_pct": SERVE_LIMIT_PCT,
        "sse_clients": 1,
        "reps": reps,
    }


def measure_profiling(scale: float, reps: int) -> dict:
    """Whole-cell cost of the sampling profiler at the default rate.

    Times one NMM/CG cell end to end (trace generation included) with
    file-backed telemetry, profiler off vs profiler on at
    :data:`~repro.telemetry.profiling.DEFAULT_HZ`, ABBA-paired as in
    :func:`measure_overhead`. The profiler adds a sampler thread plus
    a record drain at span/cell boundaries; the gate keeps the
    end-to-end cost under 10%. There is no profiler-disabled gate here
    because the disabled path *is* the plain telemetry path (nothing
    in the hot loop consults the profiler), which job 2 gates at 2%.
    """
    import shutil
    import tempfile

    from repro.telemetry.profiling import DEFAULT_HZ

    workload = get_workload(WORKLOAD)
    samples = 0

    def timed(hz) -> float:
        nonlocal samples
        directory = tempfile.mkdtemp(prefix="bench-profiling-")
        telemetry = Telemetry(
            directory, run_context=RunContext(new_run_id())
        )
        if hz is not None:
            telemetry.enable_profiling(hz)
        runner = Runner(scale=scale, seed=0, telemetry=telemetry)
        design = NMMDesign(
            get_technology("PCM"), N_CONFIGS["N6"],
            scale=scale, reference=runner.reference,
        )
        with activate(telemetry):
            start = time.perf_counter()
            runner.evaluate(design, workload)
            elapsed = time.perf_counter() - start
        if hz is not None and telemetry.profile is not None:
            samples = max(samples, telemetry.profile.profiler.samples)
        telemetry.close()
        shutil.rmtree(directory, ignore_errors=True)
        return elapsed

    off_times, on_times = [], []
    for _ in range(reps):
        a1 = timed(None)
        b1 = timed(DEFAULT_HZ)
        b2 = timed(DEFAULT_HZ)
        a2 = timed(None)
        off_times += [a1, a2]
        on_times += [b1, b2]
    off = min(off_times)
    on = min(on_times)
    overhead_pct = (on / off - 1.0) * 100.0
    floor = noise_floor_pct(off_times)
    return {
        "hz": DEFAULT_HZ,
        "profiler_off_s": round(off, 6),
        "profiler_on_s": round(on, 6),
        "enabled_overhead_pct": round(overhead_pct, 3),
        "noise_floor_pct": floor,
        "verdict": verdict(overhead_pct, floor),
        "samples": samples,
        "enabled_limit_pct": PROFILING_LIMIT_PCT,
        "disabled_gate": (
            "covered by overhead.overhead_pct: the profiler-off path "
            "is the plain telemetry path"
        ),
        "reps": reps,
    }


def span_totals(registry) -> dict[str, float]:
    """Per-span-name total seconds from a registry snapshot."""
    totals: dict[str, float] = {}
    for entry in registry.snapshot():
        if entry["name"] == "repro_span_seconds":
            name = entry["labels"].get("name", "?")
            totals[name] = totals.get(name, 0.0) + entry["sum"]
    return totals


def run_cells(scale: float) -> dict:
    """One NMM and one 4LC cell with stage spans recorded in memory."""
    telemetry = Telemetry()  # no directory: registry + spans only
    runner = Runner(scale=scale, seed=0, telemetry=telemetry)
    workload = get_workload(WORKLOAD)
    designs = [
        NMMDesign(get_technology("PCM"), N_CONFIGS["N6"],
                  scale=scale, reference=runner.reference),
        FourLCDesign(get_technology("EDRAM"), EH_CONFIGS["EH4"],
                     scale=scale, reference=runner.reference),
    ]
    cells = {}
    with activate(telemetry):  # hierarchy spans resolve the active one
        for design in designs:
            started = time.perf_counter()
            evaluation = runner.evaluate(design, workload)
            cells[design.name] = {
                "wall_s": round(time.perf_counter() - started, 6),
                "time_norm": round(evaluation.time_norm, 6),
                "energy_norm": round(evaluation.energy_norm, 6),
                "edp_norm": round(evaluation.edp_norm, 6),
            }
    stages = {
        name: round(seconds, 6)
        for name, seconds in sorted(span_totals(telemetry.registry).items())
    }
    references = runner.prepare(workload).references
    sim_s = stages.get("hierarchy.run", 0.0)
    return {
        "workload": WORKLOAD,
        "cells": cells,
        "stage_seconds": stages,
        "references": references,
        "refs_per_sec": round(references / sim_s) if sim_s else None,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=str, default="BENCH_pipeline.json",
        help="output JSON path (default: BENCH_pipeline.json)",
    )
    args = parser.parse_args(argv)
    scale = float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))
    reps = int(os.environ.get("REPRO_BENCH_REPS", DEFAULT_REPS))

    print(f"pipeline cells at scale {scale:g} ...", flush=True)
    result = run_cells(scale)

    print("telemetry-disabled overhead ...", flush=True)
    workload = get_workload(WORKLOAD)
    stream = workload.trace(scale=scale, seed=0).stream
    result["overhead"] = measure_overhead(
        stream, ReferenceSystem.sandy_bridge(), scale, reps
    )

    print("run-context stamping cost ...", flush=True)
    result["run_context"] = measure_context_stamping(reps)

    print("live-serving cost ...", flush=True)
    result["serving"] = measure_serving(scale, reps)

    print("sampling-profiler cost ...", flush=True)
    result["profiling"] = measure_profiling(scale, reps)
    result["scale"] = scale

    Path(args.out).write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")
    for name, seconds in result["stage_seconds"].items():
        print(f"  {name:24s} {seconds:8.3f}s")
    overhead = result["overhead"]
    print(
        f"  disabled-telemetry overhead: {overhead['overhead_pct']:+.2f}% "
        f"(no-hook {overhead['no_hook_s']:.3f}s, "
        f"hooked {overhead['hooked_disabled_s']:.3f}s, "
        f"noise floor {overhead['noise_floor_pct']:.2f}% -> "
        f"{overhead['verdict']}, limit {OVERHEAD_LIMIT_PCT:g}%)"
    )
    stamping = result["run_context"]
    print(
        f"  correlated event path: {stamping['plain_event_us']:.1f}us -> "
        f"{stamping['labelled_event_us']:.1f}us per event "
        f"({stamping['overhead_pct']:+.1f}% with run/worker/seq stamping, "
        f"noise floor {stamping['noise_floor_pct']:.2f}% -> "
        f"{stamping['verdict']}, limit {LABELLED_LIMIT_PCT:g}%)"
    )
    serving = result["serving"]
    print(
        f"  live serving (1 SSE client): {serving['serve_off_s']:.3f}s -> "
        f"{serving['serve_on_s']:.3f}s per cell "
        f"({serving['overhead_pct']:+.1f}%, noise floor "
        f"{serving['noise_floor_pct']:.2f}% -> {serving['verdict']}, "
        f"limit {SERVE_LIMIT_PCT:g}%)"
    )
    profiling = result["profiling"]
    print(
        f"  sampling profiler at {profiling['hz']:g}Hz: "
        f"{profiling['profiler_off_s']:.3f}s -> "
        f"{profiling['profiler_on_s']:.3f}s per cell "
        f"({profiling['enabled_overhead_pct']:+.1f}%, "
        f"{profiling['samples']} samples, noise floor "
        f"{profiling['noise_floor_pct']:.2f}% -> {profiling['verdict']}, "
        f"limit {PROFILING_LIMIT_PCT:g}%)"
    )
    def gate(label: str, pct: float, limit: float, floor: float) -> bool:
        """One overhead gate; returns True on a real (above-noise)
        breach. A reading past the limit but inside the A/A floor has
        no statistical power either way — reported, not failed."""
        if pct < limit:
            return False
        if pct <= floor:
            print(
                f"note: {label} measured {pct:+.2f}% (limit {limit:g}%) "
                f"but the A/A noise floor is {floor:.2f}% — "
                "inconclusive, not failing the gate"
            )
            return False
        print(
            f"FAIL: {label} overhead {pct:+.2f}% exceeds the "
            f"{limit:g}% limit (noise floor {floor:.2f}%)",
            file=sys.stderr,
        )
        return True

    failed = gate(
        "disabled-telemetry hook", overhead["overhead_pct"],
        OVERHEAD_LIMIT_PCT, overhead["noise_floor_pct"],
    )
    failed |= gate(
        "labelled-event", stamping["overhead_pct"],
        LABELLED_LIMIT_PCT, stamping["noise_floor_pct"],
    )
    failed |= gate(
        "live-serving", serving["overhead_pct"],
        SERVE_LIMIT_PCT, serving["noise_floor_pct"],
    )
    failed |= gate(
        "sampling-profiler", profiling["enabled_overhead_pct"],
        PROFILING_LIMIT_PCT, profiling["noise_floor_pct"],
    )
    if failed:
        return 1
    print("ok: disabled, labelled, served, and profiled paths are all "
          "within their overhead budgets")
    return 0


if __name__ == "__main__":
    sys.exit(main())
